// Package lockorder enforces a consistent mutex acquisition order
// across the packages in config lock_scope. Each package exports two
// summaries through the facts protocol: per-function lock operations
// and call edges (so a callee's acquisitions count against the locks
// its caller holds), and the resulting order edges "A held while B
// acquired". A package reports a conflict when one of its own edges
// opposes any edge in view — its own or a dependency's — which is
// where cross-package inversions become visible, since holding a lock
// across a call into another package is exactly the importing side's
// doing.
//
// Lock identity is structural: a package-level mutex variable is
// "pkg.name", a mutex struct field is "pkg.Type.field". Function-local
// mutexes have no cross-function identity and are ignored. A deferred
// Unlock releases nothing during simulation — the lock is held to the
// end of the function, which is the pattern's meaning.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/dataflow"
)

var Analyzer = analysis.Register(&analysis.Analyzer{
	Name: "lockorder",
	Doc: "flag pairs of mutexes acquired in opposite orders anywhere across the " +
		"lock_scope packages, following calls through exported summaries",
	Run: run,
})

type fact struct {
	Funcs map[string]funcSummary `json:"funcs"`
	Edges []edge                 `json:"edges,omitempty"`
}

type funcSummary struct {
	Locks []string `json:"locks,omitempty"` // locks acquired directly, deduped
	Calls []string `json:"calls,omitempty"`
}

// An edge records "From was held when To was acquired".
type edge struct {
	From string `json:"from"`
	To   string `json:"to"`
	Func string `json:"func"` // function whose body created the edge
	Posn string `json:"posn"`
	Via  string `json:"via,omitempty"` // callee that acquires To, for indirect edges
}

// item is one simulation step: a lock op or a call, in source order.
type item struct {
	kind byte // 'l' lock, 'u' unlock, 'c' call
	name string
	pos  token.Pos
}

func run(pass *analysis.Pass) error {
	if !analysis.Match(pass.Config.LockScope, pass.PkgPath) {
		return nil
	}

	funcs := dataflow.Functions(pass)
	items := make(map[string][]item, len(funcs))
	out := fact{Funcs: make(map[string]funcSummary, len(funcs))}
	for _, fn := range funcs {
		its := collectItems(pass, fn.Decl)
		items[fn.Key] = its
		sum := funcSummary{}
		seenL, seenC := make(map[string]bool), make(map[string]bool)
		for _, it := range its {
			switch it.kind {
			case 'l':
				if !seenL[it.name] {
					seenL[it.name] = true
					sum.Locks = append(sum.Locks, it.name)
				}
			case 'c':
				if !seenC[it.name] {
					seenC[it.name] = true
					sum.Calls = append(sum.Calls, it.name)
				}
			}
		}
		sort.Strings(sum.Locks)
		sort.Strings(sum.Calls)
		out.Funcs[fn.Key] = sum
	}

	// Merge dependency summaries for the transitive-acquisition closure
	// and collect their edges.
	merged := make(map[string]funcSummary)
	var depEdges []edge
	for _, dep := range pass.FactPackages() {
		var f fact
		if ok, err := pass.ImportFact(dep, &f); err != nil {
			return err
		} else if !ok {
			continue
		}
		for key, sum := range f.Funcs {
			merged[key] = sum
		}
		depEdges = append(depEdges, f.Edges...)
	}
	for key, sum := range out.Funcs {
		merged[key] = sum
	}
	acq := &acquirer{funcs: merged, memo: make(map[string][]string)}

	// Simulate each local function to produce this package's edges.
	var ownEdges []edge
	type witness struct {
		pos token.Pos
		via string
	}
	witnesses := make(map[[2]string]witness)
	keys := make([]string, 0, len(items))
	for k := range items {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, fnKey := range keys {
		held := make(map[string]token.Pos)
		var order []string // held locks, acquisition order
		addEdge := func(to string, pos token.Pos, via string) {
			for _, from := range order {
				if from == to {
					continue
				}
				e := edge{From: from, To: to, Func: fnKey, Posn: dataflow.Posn(pass.Fset, pos), Via: via}
				ownEdges = append(ownEdges, e)
				if _, ok := witnesses[[2]string{from, to}]; !ok {
					witnesses[[2]string{from, to}] = witness{pos, via}
				}
			}
		}
		for _, it := range items[fnKey] {
			switch it.kind {
			case 'l':
				if pass.Allowed(it.pos) {
					continue
				}
				addEdge(it.name, it.pos, "")
				if _, ok := held[it.name]; !ok {
					held[it.name] = it.pos
					order = append(order, it.name)
				}
			case 'u':
				if _, ok := held[it.name]; ok {
					delete(held, it.name)
					for i, n := range order {
						if n == it.name {
							order = append(order[:i], order[i+1:]...)
							break
						}
					}
				}
			case 'c':
				if len(order) == 0 {
					continue
				}
				if pass.Allowed(it.pos) {
					continue
				}
				for _, to := range acq.of(it.name) {
					addEdge(to, it.pos, it.name)
				}
			}
		}
	}
	out.Edges = dedupeEdges(ownEdges)
	if err := pass.ExportFact(&out); err != nil {
		return err
	}

	// An own edge conflicting with any visible opposite edge is a
	// finding, reported at the local witness.
	oppose := make(map[[2]string]edge)
	for _, e := range append(depEdges, out.Edges...) {
		key := [2]string{e.From, e.To}
		if _, ok := oppose[key]; !ok {
			oppose[key] = e
		}
	}
	reported := make(map[[2]string]bool)
	for _, e := range out.Edges {
		rev, ok := oppose[[2]string{e.To, e.From}]
		if !ok || reported[[2]string{e.From, e.To}] {
			continue
		}
		reported[[2]string{e.From, e.To}] = true
		w := witnesses[[2]string{e.From, e.To}]
		if w.via != "" {
			pass.Reportf(w.pos, "call to %s acquires %s while holding %s, but %s (%s) acquires them in the opposite order",
				w.via, e.To, e.From, rev.Func, rev.Posn)
		} else {
			pass.Reportf(w.pos, "acquires %s while holding %s, but %s (%s) acquires them in the opposite order",
				e.To, e.From, rev.Func, rev.Posn)
		}
	}
	return nil
}

func dedupeEdges(edges []edge) []edge {
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Posn < b.Posn
	})
	var out []edge
	seen := make(map[[2]string]bool)
	for _, e := range edges {
		key := [2]string{e.From, e.To}
		if !seen[key] {
			seen[key] = true
			out = append(out, e)
		}
	}
	return out
}

// acquirer computes the set of locks a function acquires transitively,
// memoized and cycle-safe over the merged summaries.
type acquirer struct {
	funcs   map[string]funcSummary
	memo    map[string][]string
	visitng map[string]bool
}

func (a *acquirer) of(key string) []string {
	if locks, ok := a.memo[key]; ok {
		return locks
	}
	if a.visitng == nil {
		a.visitng = make(map[string]bool)
	}
	if a.visitng[key] {
		return nil
	}
	a.visitng[key] = true
	set := make(map[string]bool)
	sum := a.funcs[key]
	for _, l := range sum.Locks {
		set[l] = true
	}
	for _, c := range sum.Calls {
		for _, l := range a.of(c) {
			set[l] = true
		}
	}
	delete(a.visitng, key)
	locks := make([]string, 0, len(set))
	for l := range set {
		locks = append(locks, l)
	}
	sort.Strings(locks)
	a.memo[key] = locks
	return locks
}

// collectItems walks one function and returns its lock operations and
// calls in source order. Deferred Unlocks are dropped — the lock stays
// held to function end — and deferred other calls are treated as calls
// at the defer site, which is conservative in the right direction.
func collectItems(pass *analysis.Pass, fd *ast.FuncDecl) []item {
	var items []item
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if kind, _, ok := mutexOp(pass, n.Call); ok && (kind == "Unlock" || kind == "RUnlock") {
				return false // held to end of function
			}
			return true
		case *ast.CallExpr:
			if kind, lock, ok := mutexOp(pass, n); ok {
				switch kind {
				case "Lock", "RLock":
					items = append(items, item{'l', lock, n.Pos()})
				case "Unlock", "RUnlock":
					items = append(items, item{'u', lock, n.Pos()})
				}
				return true
			}
			if key, ok := dataflow.CalleeKey(pass, n); ok {
				items = append(items, item{'c', key, n.Pos()})
			}
		}
		return true
	})
	sort.SliceStable(items, func(i, j int) bool { return items[i].pos < items[j].pos })
	return items
}

// mutexOp classifies a call as a mutex method invocation and resolves
// the lock's structural identity. ok is false for ordinary calls and
// for locks with no cross-function identity (locals).
func mutexOp(pass *analysis.Pass, call *ast.CallExpr) (kind, lock string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	fn, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return "", "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil || !isMutexType(sig.Recv().Type()) {
		return "", "", false
	}
	key, found := lockKey(pass, sel.X)
	if !found {
		return "", "", false
	}
	return sel.Sel.Name, key, true
}

func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	switch n.Obj().Name() {
	case "Mutex", "RWMutex":
		return true
	}
	return false
}

// lockKey gives a mutex expression its structural identity.
func lockKey(pass *analysis.Pass, e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[e].(*types.Var); ok && v.Pkg() != nil && pkgLevel(v) {
			return v.Pkg().Path() + "." + v.Name(), true
		}
	case *ast.SelectorExpr:
		if key, ok := dataflow.FieldKey(pass.TypesInfo, e); ok {
			return key, true
		}
		// Package-qualified variable: pkg.Mu.
		if v, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil && pkgLevel(v) {
			return v.Pkg().Path() + "." + v.Name(), true
		}
	}
	return "", false
}

func pkgLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}
