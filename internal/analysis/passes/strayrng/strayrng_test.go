package strayrng_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/strayrng"
)

func TestStrayrng(t *testing.T) {
	cfg := &analysis.Config{RNGScope: []string{"a"}}
	analysistest.Run(t, "testdata", strayrng.Analyzer, cfg, "a")
}
