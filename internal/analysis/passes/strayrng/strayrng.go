// Package strayrng requires every random stream to flow through the
// serializable sched.SplitMix/Derive substream API.
//
// A checkpoint persists the farm's single SplitMix word and restores
// the exact permutation stream, which is part of what makes a
// killed-and-restored farm finish bit-identically. A stray generator —
// rand.NewSource, new(rand.Rand), a rand.Rand composite literal, or
// global rand.Seed — holds state the manifest cannot see, so the first
// draw after a restore diverges. The one sanctioned construction is
// rand.New over a *SplitMix (math/rand's Source interface lets the
// scheduler borrow rand.Rand's distribution helpers while SplitMix
// owns the state); everything else must call Derive for a substream.
package strayrng

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = analysis.Register(&analysis.Analyzer{
	Name: "strayrng",
	Doc: "require RNG state to come from the serializable sched.SplitMix/Derive API; " +
		"stray sources break checkpoint round-trips",
	Run: run,
})

func run(pass *analysis.Pass) error {
	if !analysis.Match(pass.Config.RNGScope, pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.CompositeLit:
				if isRandRand(pass, n.Type) {
					pass.Reportf(n.Pos(),
						"rand.Rand literal holds RNG state outside the checkpoint; draw a substream with sched.SplitMix.Derive")
				}
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	if analysis.BuiltinNameOf(pass.TypesInfo, call.Fun) == "new" && len(call.Args) == 1 {
		if isRandRand(pass, call.Args[0]) {
			pass.Reportf(call.Pos(),
				"new(rand.Rand) holds RNG state outside the checkpoint; draw a substream with sched.SplitMix.Derive")
		}
		return
	}
	path, name, ok := analysis.CalleeOf(pass.TypesInfo, call)
	if !ok || (path != "math/rand" && path != "math/rand/v2") {
		return
	}
	switch name {
	case "Seed":
		pass.Reportf(call.Pos(),
			"rand.Seed reseeds the process-global generator; seed a sched.SplitMix and pass it explicitly")
	case "NewSource", "NewPCG", "NewChaCha8":
		pass.Reportf(call.Pos(),
			"rand.%s creates a source the checkpoint manifest cannot serialize; derive one with sched.SplitMix.Derive", name)
	case "New":
		if len(call.Args) == 1 && fedBySplitMix(pass, call.Args[0]) {
			return
		}
		pass.Reportf(call.Pos(),
			"rand.New over a non-SplitMix source breaks checkpoint round-trips; construct it from sched.NewSplitMix or Derive")
	}
}

func isRandRand(pass *analysis.Pass, e ast.Expr) bool {
	path, name, ok := analysis.PkgFuncOf(pass.TypesInfo, e)
	return ok && (path == "math/rand" || path == "math/rand/v2") && name == "Rand"
}

// fedBySplitMix reports whether the expression's static type is
// *SplitMix (the sched package's serializable source).
func fedBySplitMix(pass *analysis.Pass, e ast.Expr) bool {
	if pass.TypesInfo == nil {
		return false
	}
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, okP := t.Underlying().(*types.Pointer); okP {
		t = p.Elem()
	}
	named, okN := t.(*types.Named)
	return okN && named.Obj().Name() == "SplitMix"
}
