// Package a is strayrng golden input: RNG state that the checkpoint
// manifest can and cannot serialize.
package a

import "math/rand"

// SplitMix stands in for sched.SplitMix (matched by type name).
type SplitMix struct{ s uint64 }

func (r *SplitMix) Int63() int64 { return 0 }
func (r *SplitMix) Seed(int64)   {}

func (r *SplitMix) Derive(label string) *SplitMix { return &SplitMix{} }

// sanctioned borrows rand.Rand's distribution helpers over the
// serializable source.
func sanctioned(src *SplitMix) *rand.Rand {
	return rand.New(src)
}

func sanctionedDerived(root *SplitMix) *rand.Rand {
	return rand.New(root.Derive("cohort"))
}

func strays() {
	_ = rand.New(rand.NewSource(1)) // want `rand.New over a non-SplitMix source` `rand.NewSource creates a source the checkpoint manifest cannot serialize`
	rand.Seed(42)                   // want `rand.Seed reseeds the process-global generator`
	_ = new(rand.Rand)              // want `new\(rand.Rand\) holds RNG state outside the checkpoint`
	_ = &rand.Rand{}                // want `rand.Rand literal holds RNG state outside the checkpoint`
}

func allowed() {
	//detlint:allow strayrng -- golden test: throwaway generator feeds no persisted state
	_ = rand.New(rand.NewSource(7))
}
