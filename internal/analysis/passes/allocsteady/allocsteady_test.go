package allocsteady

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestAllocSteady(t *testing.T) {
	cfg := &analysis.Config{
		AllocPath:  []string{"a"},
		AllocRoots: []string{"a.K.Step"},
	}
	analysistest.Run(t, "testdata", Analyzer, cfg, "a")
}

// TestCrossPackage exercises the facts path: dep exports its summary,
// kern imports it, and dep's allocation surfaces at kern's call site.
func TestCrossPackage(t *testing.T) {
	cfg := &analysis.Config{
		AllocPath:  []string{"dep", "kern"},
		AllocRoots: []string{"kern.S.Step"},
	}
	analysistest.Run(t, "testdata", Analyzer, cfg, "dep", "kern")
}

// TestSeededLBMRegression is the acceptance-criterion fixture: an
// append seeded into a miniature collide-stream kernel is caught.
func TestSeededLBMRegression(t *testing.T) {
	cfg := &analysis.Config{
		AllocPath:  []string{"lbmkern"},
		AllocRoots: []string{"lbmkern.Solver.Compute"},
	}
	analysistest.Run(t, "testdata", Analyzer, cfg, "lbmkern")
}
