package kern

import "dep"

type S struct {
	buf []float64
	out []float64
}

func (s *S) Step() {
	s.relax()
	dep.Clean(s.out, 0)
	s.buf = dep.Hot(len(s.buf)) // want `call reaches a steady-path allocation: make in dep\.Hot .* \(reachable from kern\.S\.Step\)`
}

func (s *S) relax() {
	for i := range s.buf {
		s.out[i] = 0.5 * s.buf[i]
	}
}
