// Package lbmkern is a miniature of internal/lbm's collide-stream
// kernel with a seeded regression: an append crept into the relaxation
// loop, the exact class of drift allocsteady exists to catch before
// the bench gate trips.
package lbmkern

type Solver struct {
	rho  []float64
	f0   []float64
	f1   []float64
	hist []float64
}

func (s *Solver) Compute() {
	s.collide()
	s.stream()
}

func (s *Solver) collide() {
	for i := range s.f0 {
		s.f1[i] = 0.9*s.f0[i] + 0.1*s.rho[i%len(s.rho)]
		s.hist = append(s.hist, s.f1[i]) // want `append \(growth reallocates\) on the zero-alloc steady path \(reachable from lbmkern\.Solver\.Compute\)`
	}
}

func (s *Solver) stream() {
	copy(s.f0, s.f1)
}
