package a

type K struct {
	buf []float64
	out []float64
	fn  func()
}

func (k *K) Step() error {
	k.relax()
	if len(k.buf) != len(k.out) {
		// Cold exit path: the block ends by returning an error, so the
		// formatter's implicit variadic slice is exempt.
		return errf("mismatch %d", len(k.buf))
	}
	buf := make([]float64, 8) // want `make on the zero-alloc steady path \(reachable from a\.K\.Step\)`
	_ = buf
	k.buf = append(k.buf, 1)    // want `append \(growth reallocates\) on the zero-alloc steady path`
	m := map[string]int{"x": 1} // want `map literal on the zero-alloc steady path`
	_ = m
	s := []int{1, 2} // want `slice literal \(backing array\) on the zero-alloc steady path`
	_ = s
	p := &K{} // want `composite literal escapes to the heap`
	_ = p
	v := K{} // by-value struct literal: not an allocation
	_ = v
	var arr [4]float64 // array: not an allocation
	_ = arr
	wrap := func(i int) int { return i % len(k.buf) } // local-only closure: stack-allocated
	_ = wrap(3)
	k.fn = func() {}       // want `closure \(captures escape\) on the zero-alloc steady path`
	_ = sprintf("x %d", 1) // want `implicit argument slice for variadic call`
	i := any(k)            // want `conversion to interface \(boxes the value\)`
	_ = i
	k.buf = append(k.buf, 2) //detlint:allow allocsteady -- scratch retains capacity across steps
	k.hot()
	return nil
}

func (k *K) relax() {
	for i := range k.buf {
		k.out[i] = 0.5 * k.buf[i]
	}
}

func (k *K) hot() {
	if len(k.buf) == 0 {
		panic(sprintf("empty buffer rank %d", 0)) // panic argument: off the steady path
	}
	k.out = make([]float64, 4) // want `make on the zero-alloc steady path`
}

func (k *K) unreached() {
	_ = make([]int, 3) // not reachable from the root: clean
}

func sprintf(f string, args ...int) string { return f }

func errf(f string, args ...int) error { return nil }
