// Package dep is the upstream half of the cross-package fixture: its
// allocation is reported in package kern, at the call site that pulls
// it onto the steady path. No finding lands here because no root lives
// here.
package dep

func Hot(n int) []float64 {
	return make([]float64, n)
}

func Clean(dst []float64, v float64) {
	for i := range dst {
		dst[i] = v
	}
}
