// Package allocsteady statically pins the zero-alloc steady state: no
// function reachable from a configured kernel root (the collide-stream
// Compute kernels, the halo Pack/Unpack pair, the worker step driver)
// may allocate. The runtime tests sample a few configurations with
// testing.AllocsPerRun; this pass closes the gap by walking the whole
// call graph at vet time, across packages, via per-function summaries
// exported through the facts protocol.
//
// Flagged forms: make, new, append (its growth reallocates), map and
// slice literals, heap-escaping composite literals (&T{...}), escaping
// closures, implicit variadic argument slices, and explicit
// conversions to interface types. Plain by-value struct literals are
// not allocations.
//
// Exemptions keep the pass honest about what "steady state" means:
//   - arguments to panic — a panicking kernel is off the steady path;
//   - blocks that end by returning when the function returns an error,
//     or by panicking — cold exit paths;
//   - closures that never escape the declaring function (assigned to a
//     local and only ever called, or invoked immediately) — the
//     compiler stack-allocates these;
//   - sites under a //detlint:allow allocsteady directive, honored at
//     summary-build time so an allow in internal/halo holds at every
//     caller in internal/lbm.
package allocsteady

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/dataflow"
)

var Analyzer = analysis.Register(&analysis.Analyzer{
	Name: "allocsteady",
	Doc: "flag allocations in functions reachable from the zero-alloc kernel roots " +
		"(config alloc_roots), following calls across packages via exported summaries",
	Run: run,
})

// fact is the per-package summary exported through the vetx file.
type fact struct {
	Funcs map[string]funcSummary `json:"funcs"`
}

type funcSummary struct {
	Allocs []allocSite `json:"allocs,omitempty"`
	Calls  []string    `json:"calls,omitempty"`
}

type allocSite struct {
	What string `json:"what"`
	Posn string `json:"posn"`
}

// localSite keeps the token.Pos for same-package reporting.
type localSite struct {
	what string
	pos  token.Pos
}

// callSite records where the current package calls a given key, so a
// dependency's allocation can be reported at the local call site.
type callSite struct {
	key string
	pos token.Pos
}

func run(pass *analysis.Pass) error {
	if !analysis.Match(pass.Config.AllocPath, pass.PkgPath) {
		return nil
	}

	funcs := dataflow.Functions(pass)
	local := make(map[string][]localSite, len(funcs))
	callPos := make(map[string][]callSite, len(funcs))
	out := fact{Funcs: make(map[string]funcSummary, len(funcs))}
	for _, fn := range funcs {
		sites, calls := collect(pass, fn.Decl)
		local[fn.Key] = sites
		callPos[fn.Key] = calls
		sum := funcSummary{}
		seen := make(map[string]bool)
		for _, c := range calls {
			if !seen[c.key] {
				seen[c.key] = true
				sum.Calls = append(sum.Calls, c.key)
			}
		}
		sort.Strings(sum.Calls)
		for _, s := range sites {
			sum.Allocs = append(sum.Allocs, allocSite{What: s.what, Posn: dataflow.Posn(pass.Fset, s.pos)})
		}
		out.Funcs[fn.Key] = sum
	}
	if err := pass.ExportFact(&out); err != nil {
		return err
	}

	// Merge dependency summaries into one call graph.
	edges := make(map[string][]string)
	depAllocs := make(map[string][]allocSite)
	for _, dep := range pass.FactPackages() {
		var f fact
		if ok, err := pass.ImportFact(dep, &f); err != nil {
			return err
		} else if !ok {
			continue
		}
		for key, sum := range f.Funcs {
			edges[key] = sum.Calls
			if len(sum.Allocs) > 0 {
				depAllocs[key] = sum.Allocs
			}
		}
	}
	for key, sum := range out.Funcs {
		edges[key] = sum.Calls
	}

	// Only roots declared in this package anchor reports here; each
	// kernel package reports its own closure exactly once.
	var roots []string
	for _, r := range pass.Config.AllocRoots {
		if _, ok := out.Funcs[r]; ok {
			roots = append(roots, r)
		}
	}
	if len(roots) == 0 {
		return nil
	}
	reached, parent := dataflow.Reach(roots, edges)

	reachedKeys := make([]string, 0, len(reached))
	for k := range reached {
		reachedKeys = append(reachedKeys, k)
	}
	sort.Strings(reachedKeys)
	for _, key := range reachedKeys {
		root := dataflow.Path(parent, key)[0]
		if sites, ok := local[key]; ok {
			for _, s := range sites {
				pass.Reportf(s.pos, "%s on the zero-alloc steady path (reachable from %s)", s.what, root)
			}
			continue
		}
		// A dependency function: report at the local call site that
		// first leaves this package on the witness path.
		sites := depAllocs[key]
		if len(sites) == 0 {
			continue
		}
		path := dataflow.Path(parent, key)
		var caller, entered string
		for i := 1; i < len(path); i++ {
			if _, own := local[path[i]]; !own {
				caller, entered = path[i-1], path[i]
				break
			}
		}
		if caller == "" {
			continue
		}
		pos := findCall(callPos[caller], entered)
		if pos == token.NoPos {
			continue
		}
		for _, s := range sites {
			pass.Reportf(pos, "call reaches a steady-path allocation: %s in %s at %s (reachable from %s)",
				s.What, key, s.Posn, root)
		}
	}
	return nil
}

func findCall(calls []callSite, key string) token.Pos {
	for _, c := range calls {
		if c.key == key {
			return c.pos
		}
	}
	return token.NoPos
}

// collect returns the allocation sites in one function declaration,
// after exemptions and allow directives, plus its outgoing call edges.
// Calls on cold paths (panic arguments, error exits) are excluded from
// the edge set too — an error formatter invoked only on the way out is
// not on the steady path.
func collect(pass *analysis.Pass, fd *ast.FuncDecl) ([]localSite, []callSite) {
	returnsError := false
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			if tv, ok := pass.TypesInfo.Types[field.Type]; ok && analysis.IsErrorType(tv.Type) {
				returnsError = true
			}
		}
	}

	// First sweep: cold ranges (panic arguments, cold exit blocks) and
	// non-escaping closures.
	type span struct{ pos, end token.Pos }
	var cold []span
	stackClosure := make(map[*ast.FuncLit]bool)
	localFns := make(map[types.Object]*ast.FuncLit)
	callUses := make(map[types.Object]int)
	totalUses := make(map[types.Object]int)
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if analysis.BuiltinNameOf(pass.TypesInfo, n.Fun) == "panic" {
				cold = append(cold, span{n.Pos(), n.End()})
			}
			if lit, ok := n.Fun.(*ast.FuncLit); ok {
				stackClosure[lit] = true // immediately invoked
			}
			if id, ok := n.Fun.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil {
					callUses[obj]++
				}
			}
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[n]; obj != nil {
				totalUses[obj]++
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if lit, ok := n.Rhs[0].(*ast.FuncLit); ok {
					if id, ok := n.Lhs[0].(*ast.Ident); ok {
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							localFns[obj] = lit
						}
					}
				}
			}
		case *ast.IfStmt:
			if coldBlock(pass, n.Body, returnsError) {
				cold = append(cold, span{n.Body.Pos(), n.Body.End()})
			}
			if blk, ok := n.Else.(*ast.BlockStmt); ok && coldBlock(pass, blk, returnsError) {
				cold = append(cold, span{blk.Pos(), blk.End()})
			}
		case *ast.CaseClause:
			if len(n.Body) > 0 && coldStmt(pass, n.Body[len(n.Body)-1], returnsError) {
				cold = append(cold, span{n.Pos(), n.End()})
			}
		}
		return true
	})
	for obj, lit := range localFns {
		if callUses[obj] > 0 && callUses[obj] == totalUses[obj] {
			stackClosure[lit] = true // only ever called, never escapes
		}
	}
	isCold := func(pos token.Pos) bool {
		for _, s := range cold {
			if s.pos <= pos && pos < s.end {
				return true
			}
		}
		return false
	}

	// Second sweep: allocation sites and steady-path call edges.
	var sites []localSite
	var calls []callSite
	add := func(pos token.Pos, what string) {
		if isCold(pos) || pass.Allowed(pos) {
			return
		}
		sites = append(sites, localSite{what, pos})
	}
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if !isCold(n.Pos()) {
				if key, ok := dataflow.CalleeKey(pass, n); ok {
					calls = append(calls, callSite{key, n.Pos()})
				}
			}
			switch analysis.BuiltinNameOf(pass.TypesInfo, n.Fun) {
			case "make":
				add(n.Pos(), "make")
				return true
			case "new":
				add(n.Pos(), "new")
				return true
			case "append":
				add(n.Pos(), "append (growth reallocates)")
				return true
			case "panic", "len", "cap", "copy", "delete", "clear", "min", "max", "print", "println":
				return true
			}
			if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() {
				if types.IsInterface(tv.Type) && len(n.Args) == 1 {
					if atv, ok := pass.TypesInfo.Types[n.Args[0]]; ok &&
						atv.Type != nil && !types.IsInterface(atv.Type) && !isUntypedNil(atv) {
						add(n.Pos(), "conversion to interface (boxes the value)")
					}
				}
				return true
			}
			if boxesVariadic(pass, n) {
				add(n.Pos(), "implicit argument slice for variadic call")
			}
		case *ast.CompositeLit:
			what, alloc := litKind(pass, n)
			if alloc {
				add(n.Pos(), what)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := n.X.(*ast.CompositeLit); ok {
					add(lit.Pos(), "composite literal escapes to the heap")
					// Don't double-report the inner literal.
					return false
				}
			}
		case *ast.FuncLit:
			if !stackClosure[n] {
				add(n.Pos(), "closure (captures escape)")
			}
		}
		return true
	})
	sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
	return sites, calls
}

// coldBlock reports whether the block ends on a cold exit: a panic, or
// a return in a function whose signature can carry an error out.
func coldBlock(pass *analysis.Pass, blk *ast.BlockStmt, returnsError bool) bool {
	if len(blk.List) == 0 {
		return false
	}
	return coldStmt(pass, blk.List[len(blk.List)-1], returnsError)
}

func coldStmt(pass *analysis.Pass, st ast.Stmt, returnsError bool) bool {
	switch st := st.(type) {
	case *ast.ReturnStmt:
		return returnsError
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			return analysis.BuiltinNameOf(pass.TypesInfo, call.Fun) == "panic"
		}
	}
	return false
}

// boxesVariadic reports whether the call builds an implicit slice for
// a variadic parameter (any element type — the slice itself is the
// allocation).
func boxesVariadic(pass *analysis.Pass, call *ast.CallExpr) bool {
	if call.Ellipsis.IsValid() {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil {
		return false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok || !sig.Variadic() {
		return false
	}
	return len(call.Args) >= sig.Params().Len()
}

func isUntypedNil(tv types.TypeAndValue) bool {
	b, ok := tv.Type.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// litKind classifies a composite literal: map and slice literals
// allocate, array and by-value struct literals do not.
func litKind(pass *analysis.Pass, lit *ast.CompositeLit) (string, bool) {
	tv, ok := pass.TypesInfo.Types[lit]
	if ok && tv.Type != nil {
		switch tv.Type.Underlying().(type) {
		case *types.Map:
			return "map literal", true
		case *types.Slice:
			return "slice literal (backing array)", true
		}
		return "", false
	}
	// Partial info: classify syntactically.
	switch t := lit.Type.(type) {
	case *ast.MapType:
		return "map literal", true
	case *ast.ArrayType:
		if t.Len == nil {
			return "slice literal (backing array)", true
		}
	}
	return "", false
}
