// Package maporder flags range statements over maps whose bodies are
// sensitive to iteration order — the classic silent killer of
// byte-identical traces.
//
// Go randomizes map iteration order on purpose, so a map range that
// appends to an outer slice, calls out (emitting an event, formatting
// an error, writing a trace or manifest field), sends on a channel, or
// accumulates into a float/string is nondeterministic between two runs
// of the same binary with the same inputs. Order-insensitive bodies —
// writing into another map, deleting keys, integer counting — pass.
//
// The sanctioned pattern also passes: a loop that only collects keys
// (or values) into a slice is fine when that slice is visibly sorted
// in the same function:
//
//	keys := make([]string, 0, len(m))
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Strings(keys)
package maporder

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = analysis.Register(&analysis.Analyzer{
	Name: "maporder",
	Doc: "flag map ranges whose body is iteration-order sensitive " +
		"(appends, calls, channel sends, float/string accumulation) unless the collected slice is sorted",
	Run: run,
})

func run(pass *analysis.Pass) error {
	if !analysis.Match(pass.Config.Deterministic, pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		// Track the enclosing function body so the sort-after-collect
		// check can look past the loop.
		var stack []*ast.BlockStmt
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return false
				}
				stack = append(stack, n.Body)
				ast.Inspect(n.Body, walk)
				stack = stack[:len(stack)-1]
				return false
			case *ast.FuncLit:
				stack = append(stack, n.Body)
				ast.Inspect(n.Body, walk)
				stack = stack[:len(stack)-1]
				return false
			case *ast.RangeStmt:
				if len(stack) > 0 && isMapRange(pass, n) {
					checkMapRange(pass, n, stack[len(stack)-1], f)
				}
				return true
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return nil
}

func isMapRange(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	if pass.TypesInfo == nil {
		return false
	}
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt, file *ast.File) {
	var appendTargets []types.Object
	var sensitive string // first order-sensitive operation found
	note := func(why string) {
		if sensitive == "" {
			sensitive = why
		}
	}

	// consumed marks append calls already claimed by a self-append
	// assignment, so the generic call classifier skips them.
	consumed := make(map[ast.Node]bool)

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if len(n.Lhs) == 1 && accumulatesOrderSensitively(pass, n.Lhs[0]) {
					note("accumulates into a float/string in map order")
				}
			case token.ASSIGN:
				if obj, call, ok := selfAppend(pass, n); ok {
					consumed[call] = true
					if declaredBefore(obj, rs) {
						appendTargets = append(appendTargets, obj)
					}
				}
			}
		case *ast.SendStmt:
			note("sends on a channel in map order")
		case *ast.CallExpr:
			if consumed[n] {
				return true
			}
			if tv, ok := typeOf(pass, n.Fun); ok && tv.IsType() {
				return true // conversion
			}
			switch analysis.BuiltinNameOf(pass.TypesInfo, n.Fun) {
			case "append", "cap", "clear", "copy", "delete", "len", "make", "max", "min", "new":
				return true // order-insensitive builtins
			case "":
				note("calls out in map order")
			default:
				note("calls " + analysis.BuiltinNameOf(pass.TypesInfo, n.Fun) + " in map order")
			}
		}
		return true
	})

	if sensitive != "" {
		d := analysis.Diagnostic{
			Pos:     rs.For,
			Message: fmt.Sprintf("range over a map %s; iteration order is nondeterministic — iterate sorted keys", sensitive),
		}
		if fix, ok := sortKeysFix(pass, rs, file); ok {
			d.Fixes = append(d.Fixes, fix)
		}
		pass.Report(d)
		return
	}
	for _, obj := range appendTargets {
		if !sortedInFunc(pass, fnBody, obj) {
			d := analysis.Diagnostic{
				Pos: rs.For,
				Message: fmt.Sprintf(
					"range over a map appends to %s in map order; sort %s afterwards (sort.*/slices.Sort*) or iterate sorted keys",
					obj.Name(), obj.Name()),
			}
			if fix, ok := sortAfterFix(pass, rs, file, obj); ok {
				d.Fixes = append(d.Fixes, fix)
			}
			pass.Report(d)
			return
		}
	}
}

// sortKeysFix rewrites an order-sensitive map range into the
// sanctioned shape: collect the keys, sort them, iterate the sorted
// slice, and rebind the value inside the loop.
//
//	for k, v := range m { use(k, v) }
//
// becomes
//
//	keys := make([]string, 0, len(m))
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Strings(keys)
//	for _, k := range m ↦ keys {
//		v := m[k]
//		use(k, v)
//	}
//
// The fix applies only to the clean case: a := range with a named key
// of a plain sortable type, and no visible "keys" to collide with.
func sortKeysFix(pass *analysis.Pass, rs *ast.RangeStmt, file *ast.File) (analysis.SuggestedFix, bool) {
	keyID, ok := rs.Key.(*ast.Ident)
	if !ok || keyID.Name == "_" || keyID.Name == "keys" || rs.Tok != token.DEFINE {
		return analysis.SuggestedFix{}, false
	}
	tv, ok := typeOf(pass, rs.X)
	if !ok || tv.Type == nil {
		return analysis.SuggestedFix{}, false
	}
	mt, ok := tv.Type.Underlying().(*types.Map)
	if !ok {
		return analysis.SuggestedFix{}, false
	}
	basic, ok := mt.Key().(*types.Basic)
	if !ok {
		return analysis.SuggestedFix{}, false
	}
	sortFn, ok := sortCallFor(basic)
	if !ok {
		return analysis.SuggestedFix{}, false
	}
	mapSrc, ok := exprSource(pass.Fset, rs.X)
	if !ok {
		return analysis.SuggestedFix{}, false
	}
	indent := indentFor(pass, rs.For)

	var edits []analysis.TextEdit
	collect := fmt.Sprintf("keys := make([]%s, 0, len(%s))\n%sfor %s := range %s {\n%s\tkeys = append(keys, %s)\n%s}\n%s%s(keys)\n%s",
		basic.Name(), mapSrc, indent, keyID.Name, mapSrc, indent, keyID.Name, indent, indent, sortFn, indent)
	edits = append(edits, analysis.TextEdit{Pos: rs.For, End: rs.For, NewText: collect})
	header := fmt.Sprintf("for _, %s := range keys {", keyID.Name)
	edits = append(edits, analysis.TextEdit{Pos: rs.For, End: rs.Body.Lbrace + 1, NewText: header})
	if valID, okv := rs.Value.(*ast.Ident); okv && valID.Name != "_" {
		bind := fmt.Sprintf("\n%s\t%s := %s[%s]", indent, valID.Name, mapSrc, keyID.Name)
		edits = append(edits, analysis.TextEdit{Pos: rs.Body.Lbrace + 1, End: rs.Body.Lbrace + 1, NewText: bind})
	}
	edits = append(edits, importSortEdits(file)...)
	return analysis.SuggestedFix{Message: "iterate sorted keys", Edits: edits}, true
}

// sortAfterFix appends the missing sort call right after a
// collect-only loop.
func sortAfterFix(pass *analysis.Pass, rs *ast.RangeStmt, file *ast.File, obj types.Object) (analysis.SuggestedFix, bool) {
	sl, ok := obj.Type().Underlying().(*types.Slice)
	if !ok {
		return analysis.SuggestedFix{}, false
	}
	basic, ok := sl.Elem().(*types.Basic)
	if !ok {
		return analysis.SuggestedFix{}, false
	}
	sortFn, ok := sortCallFor(basic)
	if !ok {
		return analysis.SuggestedFix{}, false
	}
	indent := indentFor(pass, rs.For)
	edits := []analysis.TextEdit{{
		Pos: rs.End(), End: rs.End(),
		NewText: fmt.Sprintf("\n%s%s(%s)", indent, sortFn, obj.Name()),
	}}
	edits = append(edits, importSortEdits(file)...)
	return analysis.SuggestedFix{Message: "sort " + obj.Name() + " after the loop", Edits: edits}, true
}

func sortCallFor(b *types.Basic) (string, bool) {
	switch b.Kind() {
	case types.String:
		return "sort.Strings", true
	case types.Int:
		return "sort.Ints", true
	case types.Float64:
		return "sort.Float64s", true
	}
	return "", false
}

func exprSource(fset *token.FileSet, e ast.Expr) (string, bool) {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "", false
	}
	s := buf.String()
	if strings.ContainsAny(s, "\n") {
		return "", false
	}
	return s, true
}

// indentFor reproduces the leading indentation of the line holding
// pos. gofmt'd sources indent with tabs, one column per tab.
func indentFor(pass *analysis.Pass, pos token.Pos) string {
	col := pass.Fset.Position(pos).Column
	if col < 1 {
		col = 1
	}
	return strings.Repeat("\t", col-1)
}

// importSortEdits adds `"sort"` to the file's imports when absent.
func importSortEdits(file *ast.File) []analysis.TextEdit {
	for _, imp := range file.Imports {
		if imp.Path.Value == `"sort"` {
			return nil
		}
	}
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		if gd.Lparen.IsValid() {
			if len(gd.Specs) == 0 {
				return []analysis.TextEdit{{Pos: gd.Lparen + 1, End: gd.Lparen + 1, NewText: "\n\t\"sort\"\n"}}
			}
			// Keep the group sorted: insert before the first path that
			// follows "sort", or after the last spec.
			for _, spec := range gd.Specs {
				is := spec.(*ast.ImportSpec)
				if is.Path.Value > `"sort"` {
					return []analysis.TextEdit{{Pos: is.Pos(), End: is.Pos(), NewText: "\"sort\"\n\t"}}
				}
			}
			last := gd.Specs[len(gd.Specs)-1]
			return []analysis.TextEdit{{Pos: last.End(), End: last.End(), NewText: "\n\t\"sort\""}}
		}
		return []analysis.TextEdit{{Pos: gd.Pos(), End: gd.Pos(), NewText: "import \"sort\"\n\n"}}
	}
	return []analysis.TextEdit{{Pos: file.Name.End(), End: file.Name.End(), NewText: "\n\nimport \"sort\""}}
}

func typeOf(pass *analysis.Pass, e ast.Expr) (types.TypeAndValue, bool) {
	if pass.TypesInfo == nil {
		return types.TypeAndValue{}, false
	}
	tv, ok := pass.TypesInfo.Types[e]
	return tv, ok
}

// selfAppend matches `s = append(s, ...)` and returns s's object.
func selfAppend(pass *analysis.Pass, as *ast.AssignStmt) (types.Object, *ast.CallExpr, bool) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, nil, false
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil, nil, false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || analysis.BuiltinNameOf(pass.TypesInfo, call.Fun) != "append" || len(call.Args) == 0 {
		return nil, nil, false
	}
	first, ok := call.Args[0].(*ast.Ident)
	if !ok || first.Name != lhs.Name || pass.TypesInfo == nil {
		return nil, nil, false
	}
	obj := pass.TypesInfo.ObjectOf(lhs)
	if obj == nil || obj != pass.TypesInfo.ObjectOf(first) {
		return nil, nil, false
	}
	return obj, call, true
}

// declaredBefore reports whether the object outlives the loop — i.e.
// was declared before the range statement, so the map-ordered appends
// are observable outside it.
func declaredBefore(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() < rs.Pos()
}

// accumulatesOrderSensitively reports whether compound assignment to
// the expression is order-sensitive: float and complex addition are
// non-associative in finite precision, string += concatenates in
// visit order. Integer accumulation commutes and passes.
func accumulatesOrderSensitively(pass *analysis.Pass, lhs ast.Expr) bool {
	tv, ok := typeOf(pass, lhs)
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex|types.IsString) != 0
}

// sortedInFunc reports whether the function visibly sorts the
// collected slice: a call to sort.* or slices.Sort* with the object as
// an argument anywhere in the enclosing function body.
func sortedInFunc(pass *analysis.Pass, fnBody *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		path, _, ok := analysis.CalleeOf(pass.TypesInfo, call)
		if !ok || (path != "sort" && path != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
				found = true
			}
		}
		return true
	})
	return found
}
