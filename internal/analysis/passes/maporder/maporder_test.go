package maporder_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/maporder"
)

func TestMaporder(t *testing.T) {
	cfg := &analysis.Config{Deterministic: []string{"a"}}
	analysistest.Run(t, "testdata", maporder.Analyzer, cfg, "a")
}

// TestFixes applies the sorted-keys rewrite and the sort-after-collect
// repair and compares the rewritten file byte-for-byte with its golden.
func TestFixes(t *testing.T) {
	cfg := &analysis.Config{Deterministic: []string{"fix"}}
	analysistest.RunFixes(t, "testdata", maporder.Analyzer, cfg, "fix")
}
