package maporder_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/maporder"
)

func TestMaporder(t *testing.T) {
	cfg := &analysis.Config{Deterministic: []string{"a"}}
	analysistest.Run(t, "testdata", maporder.Analyzer, cfg, "a")
}
