// Package fix is maporder fix-golden input: fix.go.golden holds the
// byte-for-byte result of applying every suggested fix, covering the
// sorted-keys rewrite, the sort-after-collect repair, and the "sort"
// import insertion.
package fix

import (
	"fmt"
)

func emitKV(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

func collect(m map[int]bool) []int {
	var ids []int
	for id := range m {
		ids = append(ids, id)
	}
	return ids
}
