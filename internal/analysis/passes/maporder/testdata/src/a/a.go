// Package a is maporder golden input: map ranges whose bodies are and
// are not iteration-order sensitive.
package a

import (
	"fmt"
	"sort"
)

func emit(string) {}

func callsOut(m map[string]int) {
	for k := range m { // want `calls out in map order`
		emit(k)
	}
}

func errorPick(m map[string]int) error {
	for k, v := range m { // want `calls out in map order`
		if v < 0 {
			return fmt.Errorf("bad %s", k)
		}
	}
	return nil
}

func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `appends to keys in map order`
		keys = append(keys, k)
	}
	return keys
}

// appendSorted is the sanctioned collect-then-sort pattern.
func appendSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func floatAccumulate(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `accumulates into a float/string in map order`
		sum += v
	}
	return sum
}

// intAccumulate commutes; integer sums are order-insensitive.
func intAccumulate(m map[string]int) int {
	var n int
	for _, v := range m {
		n += v
	}
	return n
}

func stringAccumulate(m map[string]string) string {
	var all string
	for _, v := range m { // want `accumulates into a float/string in map order`
		all += v
	}
	return all
}

func channelSend(m map[string]int, ch chan string) {
	for k := range m { // want `sends on a channel in map order`
		ch <- k
	}
}

// mapToMap re-keys deterministically: each write lands at its own key.
func mapToMap(dst, src map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

// clearAll deletes from the ranged map; order cannot be observed.
func clearAll(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// localCollect appends to a slice that dies inside the loop body, so
// the map order never escapes.
func localCollect(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var grown []int
		grown = append(grown, vs...)
		n += len(grown)
	}
	return n
}

// sliceRange is not a map range at all.
func sliceRange(xs []string) {
	for _, x := range xs {
		emit(x)
	}
}

func allowed(m map[string]int) {
	//detlint:allow maporder -- golden test: diagnostic order of this debug dump is immaterial
	for k := range m {
		emit(k)
	}
}
