package eventcomplete

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestEventComplete(t *testing.T) {
	cfg := &analysis.Config{
		EventScope:     []string{"e"},
		EventMutations: []string{"e.Sched.queue"},
		EventEmitters:  []string{"e.Sched.emit"},
	}
	analysistest.Run(t, "testdata", Analyzer, cfg, "e")
}

// TestCrossPackage: ev mutates and discharges the obligation through a
// call chain ending in evdep, known only via evdep's exported facts.
func TestCrossPackage(t *testing.T) {
	cfg := &analysis.Config{
		EventScope:     []string{"evdep", "ev"},
		EventMutations: []string{"ev.S.phase"},
		EventEmitters:  []string{"evdep.Emit"},
	}
	analysistest.Run(t, "testdata", Analyzer, cfg, "evdep", "ev")
}

func TestEmitStubFix(t *testing.T) {
	cfg := &analysis.Config{
		EventScope:     []string{"fixpkg"},
		EventMutations: []string{"fixpkg.Sched.queue"},
		EventEmitters:  []string{"fixpkg.Sched.emit"},
	}
	analysistest.RunFixes(t, "testdata", Analyzer, cfg, "fixpkg")
}
