package e

type Event struct{ Kind string }

type Sched struct {
	queue  []int
	events []Event
}

func (s *Sched) emit(e Event) {
	s.events = append(s.events, e)
}

// Admit emits directly: complete.
func (s *Sched) Admit(j int) {
	s.queue = append(s.queue, j)
	s.emit(Event{Kind: "queued"})
}

// Finish emits transitively through notify: complete.
func (s *Sched) Finish() {
	s.queue = s.queue[:0]
	s.notify()
}

func (s *Sched) notify() {
	s.emit(Event{Kind: "done"})
}

func (s *Sched) Drop() {
	s.queue = s.queue[:len(s.queue)-1] // want `mutates e\.Sched\.queue without emitting an event before returning`
}

// In-place element writes are placement changes too.
func (s *Sched) Reorder(i, j int) {
	s.queue[i] = s.queue[j] // want `mutates e\.Sched\.queue without emitting an event before returning`
}

func (s *Sched) release() {
	s.queue = nil //detlint:allow eventcomplete -- teardown after the event stream closes
}

// Untracked fields carry no obligation.
func (s *Sched) trim() {
	s.events = s.events[:0]
}
