package ev

import "evdep"

type S struct{ phase int }

// Advance reaches evdep.Emit through evdep.Forward — visible only via
// evdep's exported summary.
func (s *S) Advance() {
	s.phase++
	evdep.Forward("advance")
}

func (s *S) Skip() {
	s.phase = 2 // want `mutates ev\.S\.phase without emitting an event before returning`
}
