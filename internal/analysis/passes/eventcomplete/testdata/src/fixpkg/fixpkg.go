package fixpkg

type Event struct{ Kind string }

type Sched struct {
	queue  []int
	events []Event
}

func (s *Sched) emit(e *Event) {
	s.events = append(s.events, *e)
}

func (s *Sched) Drop() {
	s.queue = s.queue[:0]
}
