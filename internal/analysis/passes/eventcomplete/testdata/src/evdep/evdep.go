// Package evdep owns the event sink for the cross-package fixture:
// Forward reaches the configured emitter, and the fact saying so is
// what lets package ev's Advance pass without a local emit.
package evdep

var Events []string

func Emit(kind string) {
	Events = append(Events, kind)
}

func Forward(kind string) {
	Emit(kind)
}
