// Package eventcomplete enforces the scheduler's event-completeness
// invariant, established by convention when the typed event stream
// landed: every function that mutates a job's phase or placement (the
// fields named in config event_mutations) must deliver a typed Event —
// reach one of the event_emitters, directly or through its callees —
// before it returns. Replay tooling reconstructs scheduler state from
// the event stream alone, so a silent mutation is a determinism bug
// waiting for a migration to expose it.
//
// The obligation sits on the mutating function itself, not somewhere
// up its call chain: "my caller probably emits" is exactly the
// convention drift this pass exists to catch. Deliberate exceptions
// (restore paths replaying recorded events, teardown after the stream
// is closed) carry //detlint:allow eventcomplete directives.
//
// The pass attaches a suggested fix: an emit stub after the mutation,
// for -fix to materialize, marked TODO because choosing the right
// event type is the author's call.
package eventcomplete

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/dataflow"
)

var Analyzer = analysis.Register(&analysis.Analyzer{
	Name: "eventcomplete",
	Doc: "flag functions that mutate job phase/placement fields (config " +
		"event_mutations) without reaching an event emitter before returning",
	Run: run,
})

type fact struct {
	Funcs map[string]funcSummary `json:"funcs"`
}

type funcSummary struct {
	Emits bool     `json:"emits,omitempty"`
	Calls []string `json:"calls,omitempty"`
}

type mutation struct {
	field string
	stmt  ast.Stmt
	pos   token.Pos
}

func run(pass *analysis.Pass) error {
	if !analysis.Match(pass.Config.EventScope, pass.PkgPath) {
		return nil
	}
	mutSet := make(map[string]bool, len(pass.Config.EventMutations))
	for _, m := range pass.Config.EventMutations {
		mutSet[m] = true
	}
	emitSet := make(map[string]bool, len(pass.Config.EventEmitters))
	for _, e := range pass.Config.EventEmitters {
		emitSet[e] = true
	}

	funcs := dataflow.Functions(pass)
	out := fact{Funcs: make(map[string]funcSummary, len(funcs))}
	muts := make(map[string][]mutation, len(funcs))
	decls := make(map[string]*ast.FuncDecl, len(funcs))
	for _, fn := range funcs {
		sum := funcSummary{Calls: dataflow.Calls(pass, fn.Decl.Body)}
		for _, c := range sum.Calls {
			if emitSet[c] {
				sum.Emits = true
			}
		}
		out.Funcs[fn.Key] = sum
		muts[fn.Key] = collectMutations(pass, fn.Decl, mutSet)
		decls[fn.Key] = fn.Decl
	}
	if err := pass.ExportFact(&out); err != nil {
		return err
	}

	merged := make(map[string]funcSummary)
	for _, dep := range pass.FactPackages() {
		var f fact
		if ok, err := pass.ImportFact(dep, &f); err != nil {
			return err
		} else if !ok {
			continue
		}
		for key, sum := range f.Funcs {
			merged[key] = sum
		}
	}
	for key, sum := range out.Funcs {
		merged[key] = sum
	}
	reach := &emitReach{funcs: merged, emitters: emitSet, memo: make(map[string]int)}

	keys := make([]string, 0, len(muts))
	for k := range muts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if len(muts[key]) == 0 || reach.emits(key) {
			continue
		}
		for _, m := range muts[key] {
			d := analysis.Diagnostic{
				Pos: m.pos,
				Message: "mutates " + m.field +
					" without emitting an event before returning (event-completeness invariant)",
			}
			if fix, ok := emitStub(pass, decls[key], m.stmt); ok {
				d.Fixes = append(d.Fixes, fix)
			}
			pass.Report(d)
		}
	}
	return nil
}

// collectMutations finds statements assigning to one of the tracked
// fields: plain and compound assignment, and ++/--. An index or slice
// expression over a tracked field counts too — reordering s.running in
// place is as much a placement change as replacing it.
func collectMutations(pass *analysis.Pass, fd *ast.FuncDecl, mutSet map[string]bool) []mutation {
	var muts []mutation
	addLHS := func(stmt ast.Stmt, e ast.Expr) {
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.IndexExpr:
				e = x.X
				continue
			case *ast.SliceExpr:
				e = x.X
				continue
			case *ast.StarExpr:
				e = x.X
				continue
			}
			break
		}
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return
		}
		key, ok := dataflow.FieldKey(pass.TypesInfo, sel)
		if !ok || !mutSet[key] || pass.Allowed(sel.Pos()) {
			return
		}
		muts = append(muts, mutation{field: key, stmt: stmt, pos: sel.Pos()})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				addLHS(n, lhs)
			}
		case *ast.IncDecStmt:
			addLHS(n, n.X)
		}
		return true
	})
	return muts
}

// emitReach answers "can this function reach an emitter?" over the
// merged summaries, memoized and cycle-safe.
type emitReach struct {
	funcs    map[string]funcSummary
	emitters map[string]bool
	memo     map[string]int // 0 unknown/visiting, 1 no, 2 yes
}

func (r *emitReach) emits(key string) bool {
	if r.emitters[key] {
		return true
	}
	switch r.memo[key] {
	case 1:
		return false
	case 2:
		return true
	}
	r.memo[key] = 1 // break cycles pessimistically
	sum := r.funcs[key]
	ok := sum.Emits
	for _, c := range sum.Calls {
		if ok {
			break
		}
		ok = r.emits(c)
	}
	if ok {
		r.memo[key] = 2
	}
	return ok
}

// emitStub builds the suggested fix: an emit call after the mutating
// statement, on the receiver, when the function's receiver type owns
// one of the configured emitters. nil Event forces a compile-visible
// TODO rather than silently inventing an event type.
func emitStub(pass *analysis.Pass, fd *ast.FuncDecl, stmt ast.Stmt) (analysis.SuggestedFix, bool) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return analysis.SuggestedFix{}, false
	}
	recvName := fd.Recv.List[0].Names[0].Name
	recvKey := dataflow.DeclKey(pass, fd) // pkg.Recv.Name
	recvType := ""
	if parts := strings.Split(recvKey, "."); len(parts) >= 2 {
		recvType = parts[len(parts)-2]
	}
	method := ""
	for _, e := range pass.Config.EventEmitters {
		parts := strings.Split(e, ".")
		if len(parts) >= 2 && parts[len(parts)-2] == recvType {
			method = parts[len(parts)-1]
			break
		}
	}
	if method == "" {
		return analysis.SuggestedFix{}, false
	}
	// Indentation: gofmt'd sources indent with tabs, one column each.
	col := pass.Fset.Position(stmt.Pos()).Column
	indent := strings.Repeat("\t", max(col-1, 0))
	stub := "\n" + indent + recvName + "." + method +
		"(nil) // TODO(detlint): emit the matching typed Event"
	return analysis.SuggestedFix{
		Message: "insert an emit stub after the mutation",
		Edits:   []analysis.TextEdit{{Pos: stmt.End(), End: stmt.End(), NewText: stub}},
	}, true
}
