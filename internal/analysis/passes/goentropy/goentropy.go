// Package goentropy flags `go` statements on the step/decision path.
//
// The solver's parallelism is sanctioned in exactly two places — the
// internal/pool worker slabs (whose reduction order is fixed by slab
// index, not finish order) and the internal/core worker ranks (whose
// exchanges are rank-addressed) — and both packages sit outside this
// scope. Anywhere else on the simulation path, a bare `go` statement
// lets the runtime scheduler pick an interleaving, and that choice can
// leak into observable results: event order, trace bytes, float
// reduction order. A goroutine that genuinely cannot reorder
// observable events (a cancellation watcher, a subscriber drain joined
// before results are read) is annotated:
//
//	//detlint:allow goentropy -- <why this cannot reorder observable events>
package goentropy

import (
	"go/ast"

	"repro/internal/analysis"
)

var Analyzer = analysis.Register(&analysis.Analyzer{
	Name: "goentropy",
	Doc: "flag go statements on the deterministic step/decision path; " +
		"route parallelism through the internal/pool worker slabs",
	Run: run,
})

func run(pass *analysis.Pass) error {
	if !analysis.Match(pass.Config.GoroutineScope, pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Go,
					"go statement on the deterministic step/decision path: goroutine scheduling order can leak into results; use the internal/pool worker slabs, or annotate //detlint:allow goentropy -- <why this cannot reorder observable events>")
			}
			return true
		})
	}
	return nil
}
