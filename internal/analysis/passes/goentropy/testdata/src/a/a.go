// Package a is goentropy golden input: go statements on the
// step/decision path.
package a

func compute() {}

func step() {
	go compute() // want `go statement on the deterministic step/decision path`
}

func closures() {
	done := make(chan struct{})
	go func() { // want `go statement on the deterministic step/decision path`
		close(done)
	}()
	<-done
}

func allowedDrain(events chan int) {
	done := make(chan struct{})
	var seen []int
	//detlint:allow goentropy -- drain preserves the channel's own order and is joined before seen is read
	go func() {
		defer close(done)
		for ev := range events {
			seen = append(seen, ev)
		}
	}()
	<-done
	_ = seen
}
