package goentropy_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/goentropy"
)

func TestGoentropy(t *testing.T) {
	cfg := &analysis.Config{GoroutineScope: []string{"a"}}
	analysistest.Run(t, "testdata", goentropy.Analyzer, cfg, "a")
}
