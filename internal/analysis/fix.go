package analysis

import (
	"bytes"
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// The -fix half of the diagnostic contract. A pass that knows the
// repair attaches a SuggestedFix; the driver turns the fixes for a run
// into rewritten file contents (ApplyFixes) and, for the dry run, a
// unified diff (Diff). Fixes are conservative by construction: edits
// from different diagnostics that overlap are rejected rather than
// merged, and a file is only rewritten when every one of its edits is
// well-formed.

type fileEdit struct {
	start, end int
	newText    string
}

// ApplyFixes materializes every suggested fix in diags. read loads a
// file's current contents by the name the FileSet knows it under; the
// result maps each edited file name to its new contents. Identical
// duplicate edits (two diagnostics proposing the same repair) collapse
// to one; genuinely overlapping edits are an error.
func ApplyFixes(fset *token.FileSet, diags []Diagnostic, read func(string) ([]byte, error)) (map[string][]byte, error) {
	byFile := make(map[string][]fileEdit)
	for _, d := range diags {
		for _, fix := range d.Fixes {
			for _, e := range fix.Edits {
				p, q := fset.Position(e.Pos), fset.Position(e.End)
				if p.Filename == "" || q.Filename != p.Filename || q.Offset < p.Offset {
					return nil, fmt.Errorf("fix %q: invalid edit span", fix.Message)
				}
				byFile[p.Filename] = append(byFile[p.Filename], fileEdit{p.Offset, q.Offset, e.NewText})
			}
		}
	}
	out := make(map[string][]byte)
	for name, edits := range byFile {
		sort.SliceStable(edits, func(i, j int) bool {
			if edits[i].start != edits[j].start {
				return edits[i].start < edits[j].start
			}
			return edits[i].end < edits[j].end
		})
		src, err := read(name)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		last := 0
		for i, e := range edits {
			if i > 0 && e == edits[i-1] {
				continue // duplicate suggestion
			}
			if e.start < last {
				return nil, fmt.Errorf("%s: overlapping suggested fixes at offset %d", name, e.start)
			}
			if e.end > len(src) {
				return nil, fmt.Errorf("%s: suggested fix past end of file", name)
			}
			buf.Write(src[last:e.start])
			buf.WriteString(e.newText)
			last = e.end
		}
		buf.Write(src[last:])
		if !bytes.Equal(buf.Bytes(), src) {
			out[name] = append([]byte(nil), buf.Bytes()...)
		}
	}
	return out, nil
}

// Diff renders a unified diff between two versions of a file, for the
// -fix dry run. It is a plain line-level LCS — quadratic, fine for
// source files — with three lines of context per hunk.
func Diff(name string, oldSrc, newSrc []byte) string {
	a := splitLines(oldSrc)
	b := splitLines(newSrc)
	// LCS table.
	n, m := len(a), len(b)
	lcs := make([][]int, n+1)
	for i := range lcs {
		lcs[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	type op struct {
		kind byte // ' ', '-', '+'
		text string
	}
	var ops []op
	for i, j := 0, 0; i < n || j < m; {
		switch {
		case i < n && j < m && a[i] == b[j]:
			ops = append(ops, op{' ', a[i]})
			i++
			j++
		case j < m && (i == n || lcs[i][j+1] >= lcs[i+1][j]):
			ops = append(ops, op{'+', b[j]})
			j++
		default:
			ops = append(ops, op{'-', a[i]})
			i++
		}
	}

	const ctx = 3
	var sb strings.Builder
	fmt.Fprintf(&sb, "--- %s\n+++ %s\n", name, name)
	// Walk ops grouping changed regions (with context) into hunks.
	aLine, bLine := 1, 1
	i := 0
	for i < len(ops) {
		// Skip unchanged run.
		for i < len(ops) && ops[i].kind == ' ' {
			aLine++
			bLine++
			i++
		}
		if i == len(ops) {
			break
		}
		// Hunk starts ctx lines back.
		start := i
		lead := 0
		for start > 0 && lead < ctx && ops[start-1].kind == ' ' {
			start--
			lead++
		}
		hunkA, hunkB := aLine-lead, bLine-lead
		// Extend through changes separated by ≤ 2*ctx unchanged lines.
		end := i
		for j := i; j < len(ops); {
			if ops[j].kind != ' ' {
				end = j + 1
				j++
				continue
			}
			run := 0
			for j+run < len(ops) && ops[j+run].kind == ' ' {
				run++
			}
			if j+run < len(ops) && run <= 2*ctx {
				j += run
				continue
			}
			break
		}
		trail := 0
		for end < len(ops) && trail < ctx && ops[end].kind == ' ' {
			end++
			trail++
		}
		countA, countB := 0, 0
		for _, o := range ops[start:end] {
			if o.kind != '+' {
				countA++
			}
			if o.kind != '-' {
				countB++
			}
		}
		fmt.Fprintf(&sb, "@@ -%d,%d +%d,%d @@\n", hunkA, countA, hunkB, countB)
		for _, o := range ops[start:end] {
			sb.WriteByte(o.kind)
			sb.WriteString(o.text)
			sb.WriteByte('\n')
		}
		for _, o := range ops[i:end] {
			if o.kind != '+' {
				aLine++
			}
			if o.kind != '-' {
				bLine++
			}
		}
		i = end
	}
	return sb.String()
}

func splitLines(src []byte) []string {
	s := string(src)
	s = strings.TrimSuffix(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}
