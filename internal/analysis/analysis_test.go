package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

func TestMatch(t *testing.T) {
	cases := []struct {
		patterns []string
		path     string
		want     bool
	}{
		{[]string{"repro/farm"}, "repro/farm", true},
		{[]string{"repro/farm"}, "repro/farm/workload", false},
		{[]string{"repro/farm/..."}, "repro/farm", true},
		{[]string{"repro/farm/..."}, "repro/farm/workload", true},
		{[]string{"repro/farm/..."}, "repro/farmhouse", false},
		// cmd/go's test-augmented variant of an in-scope package.
		{[]string{"repro/farm"}, "repro/farm [repro/farm.test]", true},
		{[]string{"repro/internal/sched/..."}, "repro/internal/sched/metrics", true},
		{nil, "repro/farm", false},
	}
	for _, c := range cases {
		if got := Match(c.patterns, c.path); got != c.want {
			t.Errorf("Match(%v, %q) = %v, want %v", c.patterns, c.path, got, c.want)
		}
	}
}

func TestDefaultScopes(t *testing.T) {
	cfg := Default()
	for _, path := range []string{
		"repro/internal/sched", "repro/internal/sched/metrics",
		"repro/internal/core", "repro/internal/lbm", "repro/internal/fd",
		"repro/internal/decomp", "repro/farm", "repro/farm/workload",
		"repro/farm/autoscale",
	} {
		if !Match(cfg.Deterministic, path) {
			t.Errorf("deterministic scope misses %s", path)
		}
	}
	// The sanctioned concurrency runtimes stay out of goentropy's way.
	for _, path := range []string{"repro/internal/pool", "repro/internal/core"} {
		if Match(cfg.GoroutineScope, path) {
			t.Errorf("goroutine scope should not cover the sanctioned runtime %s", path)
		}
	}
	if cfg.InScope("math/rand") || cfg.InScope("fmt") {
		t.Error("std packages must be out of scope entirely")
	}
	if !cfg.InScope("repro/internal/cluster") {
		t.Error("cluster should be in the strayrng scope")
	}
}

func TestLoadForFindsRepoConfig(t *testing.T) {
	// Walking up from this package's directory must find the
	// committed detlint.json at the module root and agree with the
	// built-in defaults on the headline scopes.
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadFor(wd)
	if err != nil {
		t.Fatal(err)
	}
	if !Match(cfg.Deterministic, "repro/farm") || !Match(cfg.ErrorSurface, "repro/farm") {
		t.Errorf("repo detlint.json does not cover repro/farm: %+v", cfg)
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "detlint.json")
	if err := os.WriteFile(path, []byte(`{"determinstic": ["typo"]}`), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("Load accepted a config with a misspelled field; scope typos must be loud")
	}
}
