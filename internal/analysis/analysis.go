// Package analysis is a small, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary, just large enough to host
// detlint's determinism analyzers. The build environment pins the repo
// to the standard library, so rather than vendoring x/tools the package
// defines the same shapes — Analyzer, Pass, Diagnostic — over go/ast and
// go/types, plus the //detlint:allow escape-hatch filtering every driver
// shares. The cmd/detlint driver speaks the cmd/go vet tool protocol
// (internal/analysis/unitchecker), so analyzers written against this
// package run under plain `go vet -vettool=`.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //detlint:allow directives. It must be a single lower-case word.
	Name string
	// Doc is the one-paragraph description shown by `detlint help`.
	Doc string
	// Run inspects the package and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// A Package is one parsed, type-checked package ready for analysis.
// Type information may be partial (the analysistest harness checks
// against stub imports); analyzers must tolerate nil entries in Info.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	// Path is the import path used for config scope matching.
	Path  string
	Types *types.Package
	Info  *types.Info
}

// A Pass connects one analyzer run to one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	PkgPath   string
	Pkg       *types.Package
	TypesInfo *types.Info
	Config    *Config

	diags *[]Diagnostic
	facts *FactStore
	allow *allowIndex
}

// A Diagnostic is one finding, attributed to the analyzer that made it.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
	// Fixes holds machine-applicable edits that resolve the finding;
	// the driver applies them under -fix.
	Fixes []SuggestedFix
}

// A SuggestedFix is one self-contained repair: all its edits are
// applied together or not at all.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// A TextEdit replaces [Pos, End) with NewText. Pos == End inserts.
type TextEdit struct {
	Pos, End token.Pos
	NewText  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Report records a fully-formed finding (used by passes that attach
// suggested fixes).
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	*p.diags = append(*p.diags, d)
}

// Allowed reports whether a well-formed //detlint:allow directive for
// this analyzer covers pos. Passes that export facts consult it at
// summary-build time: a site suppressed in its home package must not
// resurface as a cross-package finding at every caller.
func (p *Pass) Allowed(pos token.Pos) bool {
	if p.allow == nil {
		return false
	}
	posn := p.Fset.Position(pos)
	for _, d := range p.allow.byLine[posn.Filename][posn.Line] {
		if d.covers(p.Analyzer.Name) && d.reason != "" {
			return true
		}
	}
	return false
}

// IsTestFile reports whether the file's name marks it as a _test.go
// file. The determinism invariants bind the shipping simulation path;
// tests legitimately use wall-clock timeouts, goroutines and seeded
// throwaway RNGs, so every detlint analyzer skips test files.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Package).Filename, "_test.go")
}

// Run applies the analyzers to the package, filters the findings
// through the //detlint:allow directives in the source, validates those
// directives (a directive must carry a reason, and must name a
// registered analyzer), and returns the surviving diagnostics ordered
// by position. It is RunFacts without cross-package facts — the
// single-package harness.
func Run(pkg *Package, cfg *Config, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunFacts(pkg, cfg, analyzers, nil)
}

// RunFacts is Run with a fact store: analyzers see the facts the
// store's dependencies exported and their own exports land in it.
func RunFacts(pkg *Package, cfg *Config, analyzers []*Analyzer, facts *FactStore) ([]Diagnostic, error) {
	idx := buildAllowIndex(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		var diags []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			PkgPath:   pkg.Path,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Config:    cfg,
			diags:     &diags,
			facts:     facts,
			allow:     idx,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
		out = append(out, idx.filter(pkg.Fset, a.Name, diags)...)
	}
	out = append(out, idx.validate(analyzers)...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

// registry holds every analyzer name the detlint suite has ever
// registered in this process. Allow-directive validation checks names
// against it rather than against the currently running subset: a
// fixture (or a future partial invocation) that runs one pass must not
// flag a directive naming another legitimate pass as a typo.
var registry = map[string]bool{}

// Register records a's name as a known analyzer. Pass packages call it
// from init, so importing a pass anywhere makes its directives
// validate.
func Register(a *Analyzer) *Analyzer {
	registry[a.Name] = true
	return a
}

// PkgFuncOf resolves a package-qualified selector (time.Now,
// rand.Intn, fmt.Errorf) to its package import path and member name.
// It returns ok=false for anything else — method calls, locals, dot
// imports. Resolution needs only the package-name binding, which the
// type checker records even when the imported package's contents are
// unavailable, so it works under analysistest's stub imports too.
func PkgFuncOf(info *types.Info, e ast.Expr) (pkgPath, name string, ok bool) {
	sel, okSel := e.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	x, okIdent := sel.X.(*ast.Ident)
	if !okIdent || info == nil {
		return "", "", false
	}
	pn, okPkg := info.Uses[x].(*types.PkgName)
	if !okPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// CalleeOf is PkgFuncOf applied to a call's function expression.
func CalleeOf(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	return PkgFuncOf(info, call.Fun)
}

// BuiltinNameOf returns the name of the builtin a call invokes
// (append, delete, make, …), or "" if the callee is not a builtin. An
// unresolved bare identifier with a builtin's name is treated as the
// builtin, so the classification degrades safely under partial type
// information.
func BuiltinNameOf(info *types.Info, fun ast.Expr) string {
	id, ok := fun.(*ast.Ident)
	if !ok {
		return ""
	}
	if info != nil {
		if obj := info.Uses[id]; obj != nil {
			if _, isB := obj.(*types.Builtin); isB {
				return id.Name
			}
			return "" // shadowed
		}
	}
	switch id.Name {
	case "append", "cap", "clear", "copy", "delete", "len", "make", "max", "min", "new", "panic", "print", "println":
		return id.Name
	}
	return ""
}

// IsErrorType reports whether t is the error interface or a type
// implementing it.
func IsErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.Invalid {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	if types.Identical(t, errType) {
		return true
	}
	iface, _ := errType.Underlying().(*types.Interface)
	if iface == nil {
		return false
	}
	return types.Implements(t, iface)
}
