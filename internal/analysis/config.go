package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Config scopes each analyzer to the packages whose invariants it
// enforces. Scopes are lists of import-path patterns: an exact path,
// or a prefix pattern ending in "/..." matching the package and
// everything below it.
//
// The driver resolves the config in priority order: the DETLINT_CONFIG
// environment variable, a detlint.json found next to go.mod (walking
// up from the analyzed package's directory), then Default. The repo
// commits a detlint.json so the CI gate and a local `go vet -vettool`
// run agree on scope without flags.
type Config struct {
	// Deterministic packages form the simulation path whose results
	// must replay bit-identically: nodeterm (ambient entropy) and
	// maporder (map-iteration order) apply here.
	Deterministic []string `json:"deterministic"`
	// ErrorSurface packages are the supported public API: errwrap
	// enforces %w wrapping and errors.Is-comparable sentinels here.
	ErrorSurface []string `json:"error_surface"`
	// RNGScope packages must route randomness through the serializable
	// sched.SplitMix/Derive substream API: strayrng applies here.
	RNGScope []string `json:"rng_scope"`
	// GoroutineScope packages sit on the step/decision path where
	// goroutine scheduling order could leak into results: goentropy
	// flags every `go` statement here. The sanctioned concurrency
	// runtimes (internal/pool worker slabs, internal/core worker
	// ranks) are simply left out of the scope.
	GoroutineScope []string `json:"goroutine_scope"`

	// AllocPath packages carry per-function allocation summaries in
	// their facts; allocsteady walks the call graph they form.
	AllocPath []string `json:"alloc_path"`
	// AllocRoots are the function keys (pkg.Name for functions,
	// pkg.Recv.Name for methods, pointer markers stripped) anchoring
	// the zero-alloc steady state: every function reachable from a
	// root must not allocate. These are the collide-stream,
	// halo-exchange and step-driver kernels whose ns/cell trajectory
	// BENCH_main.json gates.
	AllocRoots []string `json:"alloc_roots"`
	// LockScope packages have their sync.Mutex/RWMutex acquisition
	// orders summarized; lockorder flags a pair of locks taken in
	// opposite orders anywhere across the scope.
	LockScope []string `json:"lock_scope"`
	// EventScope packages are bound by the event-completeness
	// invariant: a function mutating one of EventMutations must reach
	// one of EventEmitters before returning.
	EventScope []string `json:"event_scope"`
	// EventMutations are "pkg.Type.field" keys whose assignment moves a
	// job's phase or placement.
	EventMutations []string `json:"event_mutations"`
	// EventEmitters are the function keys that deliver a typed Event to
	// the decision stream.
	EventEmitters []string `json:"event_emitters"`
	// CkptScope packages participate in snapshot/restore pairing:
	// their reads and writes of CkptRecords fields are summarized.
	CkptScope []string `json:"ckpt_scope"`
	// CkptRecords are the "pkg.Type" record structs whose field sets
	// must balance: every field written on the save side read on the
	// restore side, and vice versa.
	CkptRecords []string `json:"ckpt_records"`
}

// Default returns the scopes for this repository.
func Default() *Config {
	deterministic := []string{
		"repro/internal/sched/...",
		"repro/internal/core",
		"repro/internal/lbm",
		"repro/internal/fd",
		"repro/internal/decomp",
		"repro/farm",
		"repro/farm/workload",
		"repro/farm/autoscale",
	}
	return &Config{
		Deterministic: deterministic,
		ErrorSurface: []string{
			"repro/farm",
			"repro/farm/workload",
			"repro/farm/autoscale",
		},
		// The cluster's randomized reservation scan consumes the
		// scheduler's stream, so construction there is in scope too.
		RNGScope: append([]string{"repro/internal/cluster"}, deterministic...),
		GoroutineScope: []string{
			"repro/internal/sched/...",
			"repro/internal/lbm",
			"repro/internal/fd",
			"repro/internal/decomp",
			"repro/farm",
			"repro/farm/workload",
			"repro/farm/autoscale",
		},
		// Everything the steady-state kernels touch: the solvers, the
		// halo copies, the worker step driver, and the small leaf
		// packages (grids, filter plans, the shared pool) the hot loops
		// call into.
		AllocPath: []string{
			"repro/internal/lbm",
			"repro/internal/fd",
			"repro/internal/halo",
			"repro/internal/core",
			"repro/internal/grid",
			"repro/internal/filter",
			"repro/internal/fluid",
			"repro/internal/pool",
		},
		AllocRoots: []string{
			"repro/internal/lbm.Solver2D.Compute",
			"repro/internal/lbm.Solver2D.Pack",
			"repro/internal/lbm.Solver2D.Unpack",
			"repro/internal/lbm.Solver2D.StepSerial",
			"repro/internal/lbm.Solver3D.Compute",
			"repro/internal/lbm.Solver3D.Pack",
			"repro/internal/lbm.Solver3D.Unpack",
			"repro/internal/lbm.Solver3D.StepSerial",
			"repro/internal/fd.Solver2D.Compute",
			"repro/internal/fd.Solver2D.Pack",
			"repro/internal/fd.Solver2D.Unpack",
			"repro/internal/fd.Solver2D.StepSerial",
			"repro/internal/fd.Solver3D.Compute",
			"repro/internal/fd.Solver3D.Pack",
			"repro/internal/fd.Solver3D.Unpack",
			"repro/internal/fd.Solver3D.StepSerial",
			"repro/internal/core.Worker.RunStep",
		},
		LockScope: []string{
			"repro/internal/pool",
			"repro/internal/msg",
			"repro/internal/sched/...",
			"repro/farm",
			"repro/farm/workload",
			"repro/farm/autoscale",
		},
		EventScope: []string{
			"repro/internal/sched",
		},
		EventMutations: []string{
			"repro/internal/sched.jobState.res",
			"repro/internal/sched.Scheduler.queue",
			"repro/internal/sched.Scheduler.running",
			"repro/internal/sched.Scheduler.finished",
		},
		EventEmitters: []string{
			"repro/internal/sched.Scheduler.emit",
		},
		CkptScope: []string{
			"repro/internal/ckpt",
			"repro/internal/cluster",
			"repro/internal/sched/...",
		},
		CkptRecords: []string{
			"repro/internal/ckpt.Manifest",
			"repro/internal/ckpt.JobRecord",
			"repro/internal/cluster.Snapshot",
			"repro/internal/cluster.HostState",
			"repro/internal/cluster.EventState",
		},
	}
}

// Load reads a config file.
func Load(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(cfg); err != nil {
		return nil, fmt.Errorf("detlint config %s: %w", path, err)
	}
	return cfg, nil
}

// LoadFor resolves the config for a package rooted at dir:
// DETLINT_CONFIG, then detlint.json beside the enclosing go.mod, then
// Default. Resolution errors are returned rather than masked — a
// half-read config silently shrinking scope would be its own
// determinism bug.
func LoadFor(dir string) (*Config, error) {
	if path := os.Getenv("DETLINT_CONFIG"); path != "" {
		return Load(path)
	}
	for d := dir; ; {
		if fi, err := os.Stat(filepath.Join(d, "go.mod")); err == nil && !fi.IsDir() {
			cfgPath := filepath.Join(d, "detlint.json")
			if _, err := os.Stat(cfgPath); err == nil {
				return Load(cfgPath)
			}
			break
		}
		parent := filepath.Dir(d)
		if parent == d {
			break
		}
		d = parent
	}
	return Default(), nil
}

// Match reports whether the import path matches any pattern in the
// scope list.
func Match(patterns []string, path string) bool {
	// cmd/go vets a package's test-augmented variant under an import
	// path like "repro/farm [repro/farm.test]"; scope-match the base.
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	for _, p := range patterns {
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			if path == rest || strings.HasPrefix(path, rest+"/") {
				return true
			}
			continue
		}
		if path == p {
			return true
		}
	}
	return false
}

// InScope reports whether any analyzer scope covers the import path;
// the unitchecker skips type-checking packages no analyzer cares
// about (all of std, and every dependency outside this module).
func (c *Config) InScope(path string) bool {
	return Match(c.Deterministic, path) ||
		Match(c.ErrorSurface, path) ||
		Match(c.RNGScope, path) ||
		Match(c.GoroutineScope, path) ||
		Match(c.AllocPath, path) ||
		Match(c.LockScope, path) ||
		Match(c.EventScope, path) ||
		Match(c.CkptScope, path)
}
