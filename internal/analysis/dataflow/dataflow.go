// Package dataflow is the shared substrate for detlint's cross-package
// passes: a canonical naming scheme for functions and struct fields, a
// per-function walker that pairs each declaration with its key, static
// callee resolution, and a reachability closure over call-edge maps.
// Passes build per-package summaries keyed by these names, export them
// through the facts protocol, and stitch dependency summaries back in
// at the importing package — which is how a single-package vet
// invocation ends up reasoning about a call chain that crosses from
// internal/lbm through internal/halo into internal/grid.
//
// Keys are flat strings so they survive the JSON fact round trip:
//
//	pkgpath.FuncName         top-level function
//	pkgpath.Recv.Name        method (pointer markers stripped)
//	pkgpath.Type.Field       struct field
//
// Pointer receivers are stripped because Go forbids declaring the same
// method name on both T and *T, so the short form is unambiguous.
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
)

// A Func pairs one function or method declaration with its key.
type Func struct {
	Key  string
	Decl *ast.FuncDecl
}

// Functions yields every function and method declared in the package's
// non-test files, in file order. Declarations without bodies (assembly
// stubs) are skipped; they cannot contribute summary content.
func Functions(pass *analysis.Pass) []Func {
	var out []Func
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, Func{Key: DeclKey(pass, fd), Decl: fd})
		}
	}
	return out
}

// DeclKey returns the canonical key for a declaration in the current
// package. It is computed syntactically so it works even when the type
// checker had nothing to say about the declaration.
func DeclKey(pass *analysis.Pass, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return pass.PkgPath + "." + fd.Name.Name
	}
	return pass.PkgPath + "." + recvTypeName(fd.Recv.List[0].Type) + "." + fd.Name.Name
}

func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver T[P]
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	}
	return "?"
}

// FuncKey returns the canonical key for a resolved function object.
func FuncKey(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if name := namedRecvName(sig.Recv().Type()); name != "" {
			return pkg + "." + name + "." + fn.Name()
		}
	}
	return pkg + "." + fn.Name()
}

func namedRecvName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// CalleeKey resolves a call's static callee to its canonical key.
// ok is false for builtins, function-typed values, and calls the
// checker could not resolve (interface methods stay resolvable — the
// key names the interface method, which is as precise as a static
// summary gets). Under partial type information a package-qualified
// selector degrades to pkgpath.Name via the package-name binding.
func CalleeKey(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	info := pass.TypesInfo
	if info == nil {
		return "", false
	}
	fun := ast.Unparen(call.Fun)
	var id *ast.Ident
	switch e := fun.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if sub, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			id = sub
		} else if sel, ok := ast.Unparen(e.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	}
	if id == nil {
		return "", false
	}
	if fn, ok := info.Uses[id].(*types.Func); ok {
		return FuncKey(fn), true
	}
	// Partial info fallback: a selector off a package name whose
	// contents the stub importer left empty.
	if pkgPath, name, ok := analysis.CalleeOf(info, call); ok {
		return pkgPath + "." + name, true
	}
	return "", false
}

// FieldKey resolves a selector expression to a struct-field key
// (pkg.Type.Field), or ok=false when the selector is not a field
// access on a named struct type.
func FieldKey(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	if info == nil {
		return "", false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || v.Pkg() == nil {
		return "", false
	}
	name := namedRecvName(s.Recv())
	if name == "" {
		return "", false
	}
	return v.Pkg().Path() + "." + name + "." + v.Name(), true
}

// Calls collects the canonical keys of every statically resolvable
// call inside node (a function body), deduplicated and sorted. Bodies
// of function literals are included: a closure declared inside the
// function runs, when it runs, on the same dynamic path.
func Calls(pass *analysis.Pass, node ast.Node) []string {
	seen := make(map[string]bool)
	ast.Inspect(node, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, ok := CalleeKey(pass, call); ok {
			seen[key] = true
		}
		return true
	})
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Reach returns every key reachable from the roots over the edge map,
// including the roots themselves when they appear in the graph, along
// with a parent edge for reconstructing one witness path. Traversal
// order is deterministic (sorted frontier).
func Reach(roots []string, edges map[string][]string) (reached map[string]bool, parent map[string]string) {
	reached = make(map[string]bool)
	parent = make(map[string]string)
	frontier := append([]string(nil), roots...)
	sort.Strings(frontier)
	for _, r := range frontier {
		reached[r] = true
	}
	for len(frontier) > 0 {
		var next []string
		for _, k := range frontier {
			for _, callee := range edges[k] {
				if !reached[callee] {
					reached[callee] = true
					parent[callee] = k
					next = append(next, callee)
				}
			}
		}
		sort.Strings(next)
		frontier = next
	}
	return reached, parent
}

// Path reconstructs the witness chain root→…→key from Reach's parent
// map.
func Path(parent map[string]string, key string) []string {
	var rev []string
	for cur := key; ; {
		rev = append(rev, cur)
		p, ok := parent[cur]
		if !ok {
			break
		}
		cur = p
	}
	out := make([]string, len(rev))
	for i, k := range rev {
		out[len(rev)-1-i] = k
	}
	return out
}

// Posn formats a position for inclusion in a cross-package fact, where
// a token.Pos from another fileset would be meaningless.
func Posn(fset *token.FileSet, pos token.Pos) string {
	return fset.Position(pos).String()
}
