package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
)

// The facts layer is what turns detlint's single-file AST checks into
// cross-package dataflow. Each analyzer may export one package fact — a
// JSON-serializable summary of the package it just analyzed (function
// call edges, allocation sites, lock acquisition orders, checkpoint
// field sets) — and read the facts every dependency exported. cmd/go's
// vet protocol already moves a facts file (.vetx) from each package to
// its dependents and caches it alongside the export data, so the same
// binary composes across packages under plain `go vet -vettool`.
//
// Facts are re-exported transitively: a package's facts file carries
// its own facts plus everything it imported, so a dependent two hops
// away still sees them regardless of how deep cmd/go's PackageVetx map
// reaches.

// PackageFacts maps analyzer name -> that analyzer's fact blob for one
// package.
type PackageFacts map[string]json.RawMessage

// A FactStore carries the facts visible to one package's analysis run:
// everything imported from dependencies, plus what the current run
// exports.
type FactStore struct {
	// imported maps dependency import path -> its facts.
	imported map[string]PackageFacts
	// exported holds the current package's facts, by analyzer.
	exported PackageFacts
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{
		imported: make(map[string]PackageFacts),
		exported: make(PackageFacts),
	}
}

// AddImported merges one dependency facts file (decoded) into the
// store. Later adds win on conflict, which cannot happen in a valid
// build (each package is analyzed exactly once).
func (s *FactStore) AddImported(facts map[string]PackageFacts) {
	for path, pf := range facts {
		s.imported[path] = pf
	}
}

// Seal moves the current package's exported facts into the imported
// set under pkgPath and resets the export slot, so one store can walk
// a dependency chain package by package — the analysistest harness
// analyzes testdata packages in order through a single store, exactly
// as cmd/go threads vetx files through a build.
func (s *FactStore) Seal(pkgPath string) {
	if len(s.exported) > 0 {
		s.imported[pkgPath] = s.exported
	}
	s.exported = make(PackageFacts)
}

// DecodeFacts parses the wire form of a facts file: import path ->
// analyzer -> blob. Empty files (the pre-facts format, and the output
// for out-of-scope packages) decode to nil.
func DecodeFacts(data []byte) (map[string]PackageFacts, error) {
	if len(data) == 0 {
		return nil, nil
	}
	var m map[string]PackageFacts
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("decoding facts: %w", err)
	}
	return m, nil
}

// Encode serializes the store for the current package's facts file:
// every imported package's facts plus the current package's own, so
// facts propagate transitively.
func (s *FactStore) Encode(pkgPath string) ([]byte, error) {
	all := make(map[string]PackageFacts, len(s.imported)+1)
	for path, pf := range s.imported {
		all[path] = pf
	}
	if len(s.exported) > 0 {
		all[pkgPath] = s.exported
	}
	if len(all) == 0 {
		return nil, nil
	}
	return json.Marshal(all)
}

// ExportFact records v (JSON-marshaled) as the analyzer's package fact
// for the current package.
func (p *Pass) ExportFact(v any) error {
	if p.facts == nil {
		return nil // fact-free harness (single-package tests)
	}
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("%s: exporting fact: %w", p.Analyzer.Name, err)
	}
	p.facts.exported[p.Analyzer.Name] = data
	return nil
}

// ImportFact decodes the fact the analyzer exported for dependency
// pkgPath into v. It returns false when that package exported no fact
// for this analyzer.
func (p *Pass) ImportFact(pkgPath string, v any) (bool, error) {
	if p.facts == nil {
		return false, nil
	}
	blob, ok := p.facts.imported[pkgPath][p.Analyzer.Name]
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(blob, v); err != nil {
		return false, fmt.Errorf("%s: fact from %s: %w", p.Analyzer.Name, pkgPath, err)
	}
	return true, nil
}

// FactPackages returns, sorted, the dependency import paths that
// exported a fact for this analyzer. Sorting keeps every traversal of
// the fact set deterministic — detlint holds itself to its own
// invariants.
func (p *Pass) FactPackages() []string {
	if p.facts == nil {
		return nil
	}
	var paths []string
	for path, pf := range p.facts.imported {
		if _, ok := pf[p.Analyzer.Name]; ok {
			paths = append(paths, path)
		}
	}
	sort.Strings(paths)
	return paths
}
