package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The escape hatch. A finding that is understood and deliberate is
// suppressed with a directive comment:
//
//	//detlint:allow goentropy -- watcher only forwards ctx cancellation
//
// The grammar is `//detlint:allow name[,name...] -- reason`, in a line
// comment or a `/*detlint:allow ...*/` block comment. The directive
// covers diagnostics on every line it spans and on the line below its
// end, so it works both as a trailing comment and as an annotation
// above the offending statement. The reason after `--` is mandatory:
// an allow without a reason is itself a finding, as is one naming an
// analyzer no pass package has registered (a typo would otherwise
// silently suppress nothing forever). A directive naming a registered
// pass that is not part of the current invocation is valid — it
// suppresses nothing now, but it is not a typo.
const (
	allowPrefix      = "//detlint:allow"
	allowBlockPrefix = "/*detlint:allow"
)

type allowDirective struct {
	pos    token.Pos
	file   string
	line   int
	names  []string
	reason string
	// raw keeps the text after the prefix for malformed-directive
	// diagnostics.
	raw string
}

type allowIndex struct {
	// byLine maps file -> line -> directives whose scope includes that
	// line (each directive is indexed at its own line and the next).
	byLine     map[string]map[int][]*allowDirective
	directives []*allowDirective
}

func buildAllowIndex(fset *token.FileSet, files []*ast.File) *allowIndex {
	idx := &allowIndex{byLine: make(map[string]map[int][]*allowDirective)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := directiveText(c.Text)
				if !ok {
					continue
				}
				d := parseAllow(c, text)
				posn := fset.Position(c.Slash)
				end := fset.Position(c.End())
				d.file, d.line = posn.Filename, posn.Line
				idx.directives = append(idx.directives, d)
				m := idx.byLine[d.file]
				if m == nil {
					m = make(map[int][]*allowDirective)
					idx.byLine[d.file] = m
				}
				// Cover every line the comment spans plus the one after
				// its end: a multi-line block directive above a statement
				// still reaches it.
				for line := d.line; line <= end.Line+1; line++ {
					m[line] = append(m[line], d)
				}
			}
		}
	}
	return idx
}

// directiveText extracts the directive body from a comment: the text
// after the allow marker in a line comment, or inside a block comment
// (with the closing */ stripped). ok is false for non-directives,
// including lookalikes such as //detlint:allowlist where the marker is
// not followed by a name boundary.
func directiveText(text string) (string, bool) {
	var rest string
	switch {
	case strings.HasPrefix(text, allowPrefix):
		rest = text[len(allowPrefix):]
	case strings.HasPrefix(text, allowBlockPrefix):
		rest = strings.TrimSuffix(text[len(allowBlockPrefix):], "*/")
	default:
		return "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' && rest[0] != '\n' {
		return "", false
	}
	return rest, true
}

func parseAllow(c *ast.Comment, text string) *allowDirective {
	// The directive ends at a nested comment marker, so golden-test
	// `// want` expectations can share the line.
	if i := strings.Index(text, "//"); i >= 0 {
		text = text[:i]
	}
	d := &allowDirective{pos: c.Slash, raw: strings.TrimSpace(text)}
	spec := d.raw
	if i := strings.Index(spec, "--"); i >= 0 {
		d.reason = strings.TrimSpace(spec[i+2:])
		spec = spec[:i]
	}
	// Names separate on commas or plain whitespace: both
	// `allow a,b -- r` and `allow a b -- r` read naturally, and the
	// forgiving split keeps a stray space from turning into one bogus
	// compound name that matches nothing and flags as a typo.
	for _, n := range strings.FieldsFunc(spec, func(r rune) bool {
		return r == ',' || r == ' ' || r == '\t' || r == '\n'
	}) {
		d.names = append(d.names, n)
	}
	return d
}

func (d *allowDirective) covers(analyzer string) bool {
	for _, n := range d.names {
		if n == analyzer {
			return true
		}
	}
	return false
}

// filter drops diagnostics covered by a well-formed directive naming
// the analyzer. Malformed directives (no reason) suppress nothing.
func (idx *allowIndex) filter(fset *token.FileSet, analyzer string, diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, diag := range diags {
		posn := fset.Position(diag.Pos)
		suppressed := false
		for _, d := range idx.byLine[posn.Filename][posn.Line] {
			if d.covers(analyzer) && d.reason != "" {
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, diag)
		}
	}
	return out
}

// validate reports directives that carry no reason or name an analyzer
// neither registered nor in the running suite — a directive naming a
// registered pass that merely is not part of this invocation is fine.
// The findings carry the pseudo-analyzer name "detlint" so they are
// never themselves suppressible.
func (idx *allowIndex) validate(suite []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(suite)+len(registry))
	for name := range registry {
		known[name] = true
	}
	for _, a := range suite {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, d := range idx.directives {
		if len(d.names) == 0 {
			out = append(out, Diagnostic{Pos: d.pos, Analyzer: "detlint",
				Message: "detlint:allow names no analyzer; write //detlint:allow <analyzer> -- <reason>"})
			continue
		}
		if d.reason == "" {
			out = append(out, Diagnostic{Pos: d.pos, Analyzer: "detlint",
				Message: "detlint:allow needs a reason; write //detlint:allow " + strings.Join(d.names, ",") + " -- <reason>"})
		}
		for _, n := range d.names {
			if !known[n] {
				out = append(out, Diagnostic{Pos: d.pos, Analyzer: "detlint",
					Message: "detlint:allow names unknown analyzer " + n})
			}
		}
	}
	return out
}
