package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The escape hatch. A finding that is understood and deliberate is
// suppressed with a directive comment:
//
//	//detlint:allow goentropy -- watcher only forwards ctx cancellation
//
// The grammar is `//detlint:allow name[,name...] -- reason`. The
// directive covers diagnostics on its own line and on the line below
// it, so it works both as a trailing comment and as an annotation
// above the offending statement. The reason after `--` is mandatory:
// an allow without a reason is itself a finding, as is one naming an
// analyzer the suite does not contain (a typo would otherwise silently
// suppress nothing forever).
const allowPrefix = "//detlint:allow"

type allowDirective struct {
	pos    token.Pos
	file   string
	line   int
	names  []string
	reason string
	// raw keeps the text after the prefix for malformed-directive
	// diagnostics.
	raw string
}

type allowIndex struct {
	// byLine maps file -> line -> directives whose scope includes that
	// line (each directive is indexed at its own line and the next).
	byLine     map[string]map[int][]*allowDirective
	directives []*allowDirective
}

func buildAllowIndex(fset *token.FileSet, files []*ast.File) *allowIndex {
	idx := &allowIndex{byLine: make(map[string]map[int][]*allowDirective)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				d := parseAllow(c)
				posn := fset.Position(c.Slash)
				d.file, d.line = posn.Filename, posn.Line
				idx.directives = append(idx.directives, d)
				m := idx.byLine[d.file]
				if m == nil {
					m = make(map[int][]*allowDirective)
					idx.byLine[d.file] = m
				}
				m[d.line] = append(m[d.line], d)
				m[d.line+1] = append(m[d.line+1], d)
			}
		}
	}
	return idx
}

func parseAllow(c *ast.Comment) *allowDirective {
	text := strings.TrimPrefix(c.Text, allowPrefix)
	// The directive ends at a nested comment marker, so golden-test
	// `// want` expectations can share the line.
	if i := strings.Index(text, "//"); i >= 0 {
		text = text[:i]
	}
	d := &allowDirective{pos: c.Slash, raw: strings.TrimSpace(text)}
	spec := d.raw
	if i := strings.Index(spec, "--"); i >= 0 {
		d.reason = strings.TrimSpace(spec[i+2:])
		spec = spec[:i]
	}
	for _, n := range strings.Split(spec, ",") {
		if n = strings.TrimSpace(n); n != "" {
			d.names = append(d.names, n)
		}
	}
	return d
}

func (d *allowDirective) covers(analyzer string) bool {
	for _, n := range d.names {
		if n == analyzer {
			return true
		}
	}
	return false
}

// filter drops diagnostics covered by a well-formed directive naming
// the analyzer. Malformed directives (no reason) suppress nothing.
func (idx *allowIndex) filter(fset *token.FileSet, analyzer string, diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, diag := range diags {
		posn := fset.Position(diag.Pos)
		suppressed := false
		for _, d := range idx.byLine[posn.Filename][posn.Line] {
			if d.covers(analyzer) && d.reason != "" {
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, diag)
		}
	}
	return out
}

// validate reports directives that carry no reason or name an analyzer
// outside the running suite. The findings carry the pseudo-analyzer
// name "detlint" so they are never themselves suppressible.
func (idx *allowIndex) validate(suite []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(suite))
	for _, a := range suite {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, d := range idx.directives {
		if len(d.names) == 0 {
			out = append(out, Diagnostic{Pos: d.pos, Analyzer: "detlint",
				Message: "detlint:allow names no analyzer; write //detlint:allow <analyzer> -- <reason>"})
			continue
		}
		if d.reason == "" {
			out = append(out, Diagnostic{Pos: d.pos, Analyzer: "detlint",
				Message: "detlint:allow needs a reason; write //detlint:allow " + strings.Join(d.names, ",") + " -- <reason>"})
		}
		for _, n := range d.names {
			if !known[n] {
				out = append(out, Diagnostic{Pos: d.pos, Analyzer: "detlint",
					Message: "detlint:allow names unknown analyzer " + n})
			}
		}
	}
	return out
}
