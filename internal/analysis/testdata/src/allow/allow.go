// Package allow exercises every form of the detlint:allow directive:
// trailing vs line-above placement, multi-name lists split on commas or
// spaces, block comments (single- and multi-line), directives naming a
// registered pass that is not part of the current invocation, and the
// malformed shapes that are themselves findings.
package allow

func boom() {}

func trailing() {
	boom() //detlint:allow allowtest -- trailing same-line form
}

func lineAbove() {
	//detlint:allow allowtest -- annotation-above form
	boom()
}

func multiComma() {
	//detlint:allow maporder,allowtest -- comma-separated name list
	boom()
}

func multiSpace() {
	//detlint:allow maporder allowtest -- space-separated name list
	boom()
}

func blockForm() {
	/*detlint:allow allowtest -- block-comment form */
	boom()
}

func blockMultiLine() {
	/*detlint:allow allowtest --
	a block directive covers every line it spans and the line
	after its end, so it reaches the statement below */
	boom()
}

// A directive naming a registered pass that is not in the running
// suite suppresses nothing here, but it is not a typo either: no
// unknown-analyzer finding, and the allowtest diagnostic survives.
func otherPass() {
	//detlint:allow maporder -- names a registered pass not running now
	boom() // want `boom called`
}

// A lookalike marker is not a directive at all.
func lookalike() {
	//detlint:allowlist allowtest -- not a directive
	boom() // want `boom called`
}

// A directive without a reason suppresses nothing and is itself a
// finding.
func noReason() {
	//detlint:allow allowtest // want `detlint:allow needs a reason`
	boom() // want `boom called`
}

// A directive without any analyzer name is a finding.
func nameless() {
	//detlint:allow -- a reason with nothing to excuse // want `detlint:allow names no analyzer`
	boom() // want `boom called`
}

// A misspelled analyzer name is loud: a typo would otherwise silently
// suppress nothing forever.
func typo() {
	//detlint:allow allowtst -- typo in the pass name // want `detlint:allow names unknown analyzer allowtst`
	boom() // want `boom called`
}
