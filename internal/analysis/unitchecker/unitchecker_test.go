package unitchecker

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
)

// roundtrip exports a marker fact from every package it analyzes and
// reports one diagnostic per dependency fact it can see, so the test
// can observe facts crossing package boundaries through vetx files.
var roundtrip = &analysis.Analyzer{
	Name: "roundtrip",
	Doc:  "export a marker fact and report every dependency fact seen",
	Run: func(pass *analysis.Pass) error {
		if err := pass.ExportFact(map[string]string{"from": pass.PkgPath}); err != nil {
			return err
		}
		for _, dep := range pass.FactPackages() {
			var mark map[string]string
			if ok, err := pass.ImportFact(dep, &mark); err != nil {
				return err
			} else if ok {
				pass.Reportf(pass.Files[0].Name.Pos(), "sees fact from %s", mark["from"])
			}
		}
		return nil
	},
}

// TestFactsRoundTrip drives run() through fabricated vet.cfg files the
// way cmd/go would: analyze dependency x (exports a fact into its vetx
// file), analyze dependent y with PackageVetx pointing at x's output
// (diagnostic proves the fact arrived), then relay through z, a package
// outside every configured scope, whose vetx must still carry both
// upstream facts.
func TestFactsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
		return path
	}

	xGo := write("x/x.go", "package x\n\nfunc X() {}\n")
	yGo := write("y/y.go", "package y\n\nfunc Y() {}\n")
	zGo := write("z/z.go", "package z\n\nfunc Z() {}\n")
	// x and y are in scope; z is not, so it must relay facts unanalyzed.
	scopes := write("detlint.json", `{"deterministic": ["x", "y"]}`)

	vetCfg := func(name string, cfg Config) string {
		t.Helper()
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return write(name, string(data))
	}

	xVetx := filepath.Join(dir, "x.vetx")
	yVetx := filepath.Join(dir, "y.vetx")
	zVetx := filepath.Join(dir, "z.vetx")
	opts := runOpts{config: scopes}
	suite := []*analysis.Analyzer{roundtrip}

	// Leaf package: nothing imported, fact exported.
	xCfg := vetCfg("x.cfg", Config{
		ID: "x", ImportPath: "x", Dir: dir, GoVersion: "go1.24",
		GoFiles: []string{xGo}, VetxOutput: xVetx,
	})
	if code := run(xCfg, suite, opts); code != 0 {
		t.Fatalf("run(x) = %d, want 0 (no dependency facts to report)", code)
	}
	xFacts := decodeVetx(t, xVetx)
	if _, ok := xFacts["x"]["roundtrip"]; !ok {
		t.Fatalf("x.vetx lacks x's roundtrip fact: %v", xFacts)
	}

	// Dependent package: x's vetx arrives via PackageVetx, the imported
	// fact produces a diagnostic, and y re-exports x's fact with its own.
	yCfg := vetCfg("y.cfg", Config{
		ID: "y", ImportPath: "y", Dir: dir, GoVersion: "go1.24",
		GoFiles: []string{yGo}, VetxOutput: yVetx,
		PackageVetx: map[string]string{"x": xVetx},
	})
	if code := run(yCfg, suite, opts); code != 2 {
		t.Fatalf("run(y) = %d, want 2 (the fact from x must surface as a finding)", code)
	}
	yFacts := decodeVetx(t, yVetx)
	for _, pkg := range []string{"x", "y"} {
		if _, ok := yFacts[pkg]["roundtrip"]; !ok {
			t.Errorf("y.vetx lacks %s's roundtrip fact (transitive re-export broken): %v", pkg, yFacts)
		}
	}

	// Out-of-scope package: not analyzed (exit 0, no diagnostics), but
	// its vetx still relays both upstream facts so a scope gap never
	// severs the chain for packages beyond it.
	zCfg := vetCfg("z.cfg", Config{
		ID: "z", ImportPath: "z", Dir: dir, GoVersion: "go1.24",
		GoFiles: []string{zGo}, VetxOutput: zVetx,
		PackageVetx: map[string]string{"y": yVetx},
	})
	if code := run(zCfg, suite, opts); code != 0 {
		t.Fatalf("run(z) = %d, want 0 (out of scope, never analyzed)", code)
	}
	zFacts := decodeVetx(t, zVetx)
	for _, pkg := range []string{"x", "y"} {
		if _, ok := zFacts[pkg]["roundtrip"]; !ok {
			t.Errorf("z.vetx lacks %s's roundtrip fact (out-of-scope relay broken): %v", pkg, zFacts)
		}
	}
	if _, ok := zFacts["z"]; ok {
		t.Error("z.vetx contains facts for z itself, but z is out of scope and must not be analyzed")
	}
}

func decodeVetx(t *testing.T, path string) map[string]analysis.PackageFacts {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	m, err := analysis.DecodeFacts(data)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
