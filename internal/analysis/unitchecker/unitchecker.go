// Package unitchecker implements the cmd/go vet tool protocol over the
// standard library, so a detlint binary runs as
//
//	go vet -vettool=$(which detlint) ./...
//
// The protocol, reverse-engineered from cmd/go/internal/work and
// mirrored from x/tools' unitchecker (which this repo cannot vendor):
//
//  1. cmd/go runs `tool -V=full` once and hashes the reply into its
//     build cache key, so analyses re-run when the tool changes;
//  2. cmd/go runs `tool -flags` and expects a JSON array of
//     {Name,Bool,Usage} describing the flags it may pass through;
//  3. per package, cmd/go writes a vet.cfg — file lists, the import
//     map, and export-data paths for every dependency — and invokes
//     `tool [flags] path/to/vet.cfg`. The tool type-checks from export
//     data, analyzes, writes the (for detlint, empty) facts file named
//     by VetxOutput, prints diagnostics, and exits 0 (clean), 2
//     (findings), or 1 (tool failure).
//
// Invoked any other way, Main re-execs itself under `go vet -vettool`
// so `detlint ./...` works directly during development.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Config mirrors the fields of cmd/go's vet.cfg that detlint consumes.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vet tool built from a suite of
// analyzers. It never returns.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	var (
		versionFlag string
		printFlags  bool
		jsonOut     bool
		fixFlag     bool
		diffFlag    bool
		configPath  string
	)
	fs := newFlagSet(&versionFlag, &printFlags, &jsonOut, &fixFlag, &diffFlag, &configPath)
	if err := fs.parse(os.Args[1:]); err != nil {
		log.Fatal(err)
	}

	switch {
	case versionFlag != "":
		if versionFlag != "full" {
			log.Fatalf("unsupported flag value: -V=%s", versionFlag)
		}
		printVersion()
		os.Exit(0)
	case printFlags:
		fs.printJSON()
		os.Exit(0)
	}

	args := fs.args
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(run(args[0], analyzers, runOpts{jsonOut, fixFlag, diffFlag, configPath}))
	}
	os.Exit(reexec(jsonOut, fixFlag, diffFlag, configPath, args))
}

// runOpts carries the per-invocation flags into run.
type runOpts struct {
	json   bool
	fix    bool
	diff   bool
	config string
}

// flagSet is a hand-rolled parser: cmd/go passes flags in -name=value
// form, and the -flags reply must enumerate exactly what we accept.
type flagSet struct {
	version *string
	print   *bool
	json    *bool
	fix     *bool
	diff    *bool
	config  *string
	args    []string
}

func newFlagSet(version *string, print, jsonOut, fix, diff *bool, config *string) *flagSet {
	return &flagSet{version: version, print: print, json: jsonOut, fix: fix, diff: diff, config: config}
}

func (fs *flagSet) parse(args []string) error {
	for i := 0; i < len(args); i++ {
		a := args[i]
		if a == "--" {
			fs.args = append(fs.args, args[i+1:]...)
			return nil
		}
		if !strings.HasPrefix(a, "-") {
			fs.args = append(fs.args, a)
			continue
		}
		name, value, hasValue := strings.Cut(strings.TrimLeft(a, "-"), "=")
		switch name {
		case "V":
			if !hasValue {
				value = "full"
			}
			*fs.version = value
		case "flags":
			*fs.print = true
		case "json":
			*fs.json = value != "false"
		case "fix":
			*fs.fix = value != "false"
		case "diff":
			*fs.diff = value != "false"
		case "config":
			if !hasValue {
				if i+1 >= len(args) {
					return fmt.Errorf("flag -config needs a path")
				}
				i++
				value = args[i]
			}
			*fs.config = value
		default:
			return fmt.Errorf("unknown flag -%s", name)
		}
	}
	return nil
}

// printJSON answers `tool -flags` in the shape cmd/go's vet flag
// validation decodes.
func (fs *flagSet) printJSON() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{
		{"V", false, "print version and exit"},
		{"flags", true, "print flags in JSON and exit"},
		{"json", true, "emit machine-readable JSON diagnostics on stdout"},
		{"fix", true, "apply suggested fixes to the source tree"},
		{"diff", true, "print suggested fixes as a unified diff without applying (dry run)"},
		{"config", false, "path to a detlint.json scope config"},
	}
	data, err := json.Marshal(flags)
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// printVersion replies to -V=full with the line format cmd/go's
// buildid probe parses: "<executable> version devel ... buildID=<hash>".
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel detlint buildID=%02x\n", exe, string(h.Sum(nil)))
}

// reexec turns a direct `detlint [flags] ./...` invocation into
// `go vet -vettool=<self> [flags] ./...`.
func reexec(jsonOut, fix, diff bool, configPath string, args []string) int {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	vetArgs := []string{"vet", "-vettool=" + exe}
	if jsonOut {
		vetArgs = append(vetArgs, "-json")
	}
	if fix {
		vetArgs = append(vetArgs, "-fix")
	}
	if diff {
		vetArgs = append(vetArgs, "-diff")
	}
	if configPath != "" {
		vetArgs = append(vetArgs, "-config="+configPath)
	}
	cmd := exec.Command("go", append(vetArgs, args...)...)
	cmd.Stdout, cmd.Stderr, cmd.Stdin = os.Stdout, os.Stderr, os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		log.Fatal(err)
	}
	return 0
}

func run(cfgFile string, analyzers []*analysis.Analyzer, opts runOpts) int {
	cfg, err := readConfig(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	// cmd/go caches the facts file and propagates it to dependents; an
	// empty one satisfies the protocol. Written first so every exit
	// path below leaves one, then overwritten with real facts when the
	// package is in scope.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			log.Fatal(err)
		}
	}

	// Gather the facts every dependency exported. Each vetx already
	// re-exports its own dependencies' facts, so the merge is complete
	// even if cmd/go's PackageVetx lists only direct deps.
	facts := analysis.NewFactStore()
	for _, path := range sortedKeys(cfg.PackageVetx) {
		data, err := os.ReadFile(cfg.PackageVetx[path])
		if err != nil {
			log.Fatalf("reading facts for %s: %v", path, err)
		}
		m, err := analysis.DecodeFacts(data)
		if err != nil {
			log.Fatalf("facts for %s: %v", path, err)
		}
		facts.AddImported(m)
	}
	writeVetx := func() {
		if cfg.VetxOutput == "" {
			return
		}
		data, err := facts.Encode(cfg.ImportPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
			log.Fatal(err)
		}
	}

	dcfg, err := resolveScopes(opts.config, cfg.Dir)
	if err != nil {
		log.Fatal(err)
	}
	// Packages outside every scope — all of std, every dependency
	// beyond this module — are not analyzed, but their vetx must still
	// relay dependency facts so a scope gap never severs the chain.
	if !dcfg.InScope(cfg.ImportPath) {
		writeVetx()
		return emit(nil, cfg, nil, opts, analyzers)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	pkg, info, err := typeCheck(fset, files, cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		log.Fatalf("typecheck %s: %v", cfg.ImportPath, err)
	}

	diags, err := analysis.RunFacts(&analysis.Package{
		Fset:  fset,
		Files: files,
		Path:  cfg.ImportPath,
		Types: pkg,
		Info:  info,
	}, dcfg, analyzers, facts)
	if err != nil {
		log.Fatal(err)
	}
	writeVetx()

	if opts.fix || opts.diff {
		fixed, err := analysis.ApplyFixes(fset, diags, os.ReadFile)
		if err != nil {
			log.Fatal(err)
		}
		for _, name := range sortedKeys(fixed) {
			if opts.diff {
				old, err := os.ReadFile(name)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Print(analysis.Diff(name, old, fixed[name]))
			} else {
				if err := os.WriteFile(name, fixed[name], 0o666); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	return emit(diags, cfg, fset, opts, analyzers)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func readConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", path, err)
	}
	return cfg, nil
}

func resolveScopes(configPath, dir string) (*analysis.Config, error) {
	if configPath != "" {
		return analysis.Load(configPath)
	}
	return analysis.LoadFor(dir)
}

// typeCheck loads the package from source plus per-dependency export
// data, exactly as the compiler saw it.
func typeCheck(fset *token.FileSet, files []*ast.File, cfg *Config) (*types.Package, *types.Info, error) {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	base := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	var errs []error
	tc := &types.Config{
		Importer: canonicalImporter{cfg.ImportMap, base},
		Sizes:    types.SizesFor(compiler, build.Default.GOARCH),
		Error:    func(err error) { errs = append(errs, err) },
	}
	if v, _, _ := strings.Cut(cfg.GoVersion, "-"); strings.HasPrefix(v, "go") {
		tc.GoVersion = v
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, _ := tc.Check(cfg.ImportPath, fset, files, info)
	if len(errs) > 0 {
		return nil, nil, errs[0]
	}
	return pkg, info, nil
}

// canonicalImporter maps source-level import paths through the vet
// config's ImportMap before hitting export data.
type canonicalImporter struct {
	importMap map[string]string
	base      types.Importer
}

func (ci canonicalImporter) Import(path string) (*types.Package, error) {
	if canonical, ok := ci.importMap[path]; ok {
		path = canonical
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return ci.base.Import(path)
}

// emit prints diagnostics and returns the process exit code: JSON mode
// writes a {package: {analyzer: [findings]}} object to stdout and
// always exits 0 (matching `go vet -json`); plain mode writes
// file:line:col lines to stderr and exits 2 when anything was found.
func emit(diags []analysis.Diagnostic, cfg *Config, fset *token.FileSet, opts runOpts, analyzers []*analysis.Analyzer) int {
	if cfg.VetxOnly {
		return 0
	}
	if opts.json {
		type jsonDiag struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		byAnalyzer := make(map[string][]jsonDiag)
		for _, d := range diags {
			byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{
				Posn:    fset.Position(d.Pos).String(),
				Message: d.Message,
			})
		}
		tree := map[string]map[string][]jsonDiag{cfg.ID: byAnalyzer}
		data, err := json.MarshalIndent(tree, "", "\t")
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(data)
		fmt.Println()
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
