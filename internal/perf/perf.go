// Package perf is the performance plane of the reproduction: it replays
// the per-step communication pattern of a decomposed simulation through
// the virtual cluster (host speeds from the section-7 speed table) and the
// shared-bus Ethernet model, and measures parallel efficiency with the
// timing protocol of section 7.
//
// Wall-clock timing of the functional plane cannot reproduce a 1994
// cluster (loopback TCP on one modern machine has neither the 10 Mbps
// shared bus nor the 39k-nodes-per-second hosts), so every efficiency and
// speedup figure of the paper is regenerated here instead: same
// decompositions, same message counts and sizes, same host speeds, same
// measurement discipline. The discrete-event engine preserves the real
// dependency structure — a subregion starts its next phase only when its
// own compute and all expected halo messages have finished — so pipeline
// effects, the (P-1) bus contention of equation 19 and the
// un-synchronization window of appendix A all emerge rather than being
// assumed.
package perf

import (
	"fmt"

	"repro/internal/netsim"
)

// OutMsg is one outgoing halo message in the pattern.
type OutMsg struct {
	Dst   int
	Bytes int // payload bytes (frame headers are the bus's business)
}

// WorkerSpec is the static per-step pattern of one parallel subprocess.
type WorkerSpec struct {
	Rank int
	// StepComputeSec is the local computation per integration step.
	StepComputeSec float64
	// PhaseFrac splits the step compute across phases; it must sum to 1.
	PhaseFrac []float64
	// Out lists the messages sent at the end of each phase.
	Out [][]OutMsg
	// Expect is the number of messages that must arrive for each phase
	// before the next phase may start.
	Expect []int
}

// Spec is a complete experiment.
type Spec struct {
	Workers []WorkerSpec
	Steps   int
	// Net is the interconnect: netsim.AsNetwork(bus) for the paper's
	// shared Ethernet, or a netsim.Switch for the conclusion's outlook
	// technologies. The Bus field is a convenience that wraps a shared
	// bus; set exactly one of the two.
	Net netsim.Network
	Bus *netsim.Bus

	// JitterFrac adds a uniform random [0, JitterFrac] fractional delay
	// to every phase compute (time-sharing noise on real workstations);
	// 0 disables it. Seed makes runs reproducible.
	JitterFrac float64
	Seed       int64

	// SpikeProb and SpikeFrac model the occasional large delay of a
	// time-shared workstation (another process briefly steals the CPU):
	// with probability SpikeProb a phase takes (1+SpikeFrac) times
	// longer. Appendix C's comparison of FCFS versus strict ordering
	// hinges on how such delays propagate.
	SpikeProb float64
	SpikeFrac float64

	// StrictOrder gates each worker's sends to higher ranks on the
	// arrival of its lower neighbour's message (appendix C's strict
	// pipeline ordering); the default is first-come-first-served.
	StrictOrder bool
}

// Result is the outcome of one simulated run.
type Result struct {
	ElapsedSec  float64
	PerStepSec  float64
	Net         netsim.Stats
	Utilization float64
}

// hashUnit maps (seed, rank, step, phase) to a uniform value in [0, 1)
// with a splitmix-style mixer.
func hashUnit(seed int64, rank, step, phase int) float64 {
	z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(rank)*0xbf58476d1ce4e5b9 +
		uint64(step)*0x94d049bb133111eb + uint64(phase)*0x2545f4914f6cdd1d
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// worker is the runtime state of one subprocess.
type worker struct {
	spec WorkerSpec

	step, phase int
	// computed marks the current phase's local work as finished.
	computed bool
	// arrived counts halo arrivals per (step, phase).
	arrived map[[2]int]int
	// deferred holds strict-order sends awaiting the left neighbour.
	deferred map[[2]int][]OutMsg
	// leftSeen marks (step, phase) pairs whose left-neighbour message
	// arrived (strict-order mode).
	leftSeen map[[2]int]bool

	finish float64
	done   bool
}

// Run executes the experiment and returns timing results.
func Run(s *Spec) (*Result, error) {
	if s.Net == nil && s.Bus != nil {
		s.Net = netsim.AsNetwork(s.Bus)
	}
	if len(s.Workers) == 0 || s.Steps <= 0 || s.Net == nil {
		return nil, fmt.Errorf("perf: incomplete spec")
	}
	for _, ws := range s.Workers {
		if len(ws.PhaseFrac) == 0 || len(ws.Out) != len(ws.PhaseFrac) || len(ws.Expect) != len(ws.PhaseFrac) {
			return nil, fmt.Errorf("perf: rank %d: inconsistent phase arrays", ws.Rank)
		}
		sum := 0.0
		for _, f := range ws.PhaseFrac {
			sum += f
		}
		if sum < 0.999 || sum > 1.001 {
			return nil, fmt.Errorf("perf: rank %d: phase fractions sum to %v", ws.Rank, sum)
		}
	}
	s.Net.Reset()
	q := netsim.NewQueue()

	ws := make([]*worker, len(s.Workers))
	for i := range s.Workers {
		ws[i] = &worker{
			spec:     s.Workers[i],
			arrived:  make(map[[2]int]int),
			deferred: make(map[[2]int][]OutMsg),
			leftSeen: make(map[[2]int]bool),
		}
	}

	var phaseDone func(w *worker, t float64)
	var tryAdvance func(w *worker, t float64)

	computeDur := func(w *worker) float64 {
		d := w.spec.StepComputeSec * w.spec.PhaseFrac[w.phase]
		if s.JitterFrac > 0 {
			// Deterministic per-(rank, step, phase) noise so that two
			// runs differing only in ordering policy (FCFS vs strict)
			// see identical compute-time realizations.
			d *= 1 + s.JitterFrac*hashUnit(s.Seed, w.spec.Rank, w.step, w.phase)
		}
		if s.SpikeProb > 0 && hashUnit(s.Seed+1, w.spec.Rank, w.step, w.phase) < s.SpikeProb {
			d *= 1 + s.SpikeFrac
		}
		return d
	}

	startPhase := func(w *worker, t float64) {
		w.computed = false
		q.At(t+computeDur(w), func(t float64) { phaseDone(w, t) })
	}

	var deliver func(w *worker, src, step, phase int, t float64)

	transmit := func(src int, msgs []OutMsg, step, phase int, t float64) {
		for _, m := range msgs {
			dst := ws[m.Dst]
			at := s.Net.Transmit(t, src, m.Dst, m.Bytes)
			q.At(at, func(t float64) { deliver(dst, src, step, phase, t) })
		}
	}

	// releaseDeferred sends the right-going messages held for strict
	// ordering once the left neighbour's message has arrived.
	releaseDeferred := func(w *worker, key [2]int, t float64) {
		if msgs, ok := w.deferred[key]; ok {
			delete(w.deferred, key)
			transmit(w.spec.Rank, msgs, key[0], key[1], t)
		}
	}

	deliver = func(w *worker, src, step, phase int, t float64) {
		key := [2]int{step, phase}
		w.arrived[key]++
		if s.StrictOrder && src == w.spec.Rank-1 {
			w.leftSeen[key] = true
			releaseDeferred(w, key, t)
		}
		tryAdvance(w, t)
	}

	phaseDone = func(w *worker, t float64) {
		w.computed = true
		msgs := w.spec.Out[w.phase]
		key := [2]int{w.step, w.phase}
		if s.StrictOrder && w.spec.Rank > 0 && w.spec.Expect[w.phase] > 0 && !w.leftSeen[key] {
			// Appendix C strict ordering: hold right-going sends until
			// the left neighbour's data arrives; left-going sends flow.
			var now, held []OutMsg
			for _, m := range msgs {
				if m.Dst > w.spec.Rank {
					held = append(held, m)
				} else {
					now = append(now, m)
				}
			}
			transmit(w.spec.Rank, now, w.step, w.phase, t)
			if len(held) > 0 {
				w.deferred[key] = append(w.deferred[key], held...)
			}
		} else {
			transmit(w.spec.Rank, msgs, w.step, w.phase, t)
		}
		tryAdvance(w, t)
	}

	tryAdvance = func(w *worker, t float64) {
		if w.done {
			return
		}
		key := [2]int{w.step, w.phase}
		if !w.computed || w.arrived[key] < w.spec.Expect[w.phase] {
			return
		}
		// Phase complete: consume and advance.
		delete(w.arrived, key)
		delete(w.leftSeen, key)
		w.phase++
		if w.phase == len(w.spec.PhaseFrac) {
			w.phase = 0
			w.step++
			if w.step == s.Steps {
				w.done = true
				w.finish = t
				return
			}
		}
		startPhase(w, t)
	}

	for _, w := range ws {
		startPhase(w, 0)
	}
	q.Run()

	elapsed := 0.0
	for _, w := range ws {
		if !w.done {
			return nil, fmt.Errorf("perf: rank %d stalled at step %d phase %d", w.spec.Rank, w.step, w.phase)
		}
		if w.finish > elapsed {
			elapsed = w.finish
		}
	}
	return &Result{
		ElapsedSec:  elapsed,
		PerStepSec:  elapsed / float64(s.Steps),
		Net:         s.Net.Stats(),
		Utilization: s.Net.Utilization(elapsed),
	}, nil
}
