package perf

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/decomp"
	"repro/internal/model"
	"repro/internal/netsim"
)

// Point is one measurement of a figure's series.
type Point struct {
	X, Y float64
}

// Series is one labelled curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// MeasureSteps is the paper's timing window: "averaging over 20
// consecutive integration steps".
const MeasureSteps = 20

// Measure applies the section-7 protocol to a pattern: run 20 consecutive
// steps, repeat the measurement twice, and select the best performance (the
// paper repeats to dodge moments when the Ethernet is loaded by an FTP).
func Measure(workers []WorkerSpec, net netsim.Network, jitter float64) (float64, netsim.Stats, error) {
	best := -1.0
	var stats netsim.Stats
	for rep := 0; rep < 2; rep++ {
		res, err := Run(&Spec{
			Workers:    workers,
			Steps:      MeasureSteps,
			Net:        net,
			JitterFrac: jitter,
			Seed:       int64(rep + 1),
		})
		if err != nil {
			return 0, netsim.Stats{}, err
		}
		if best < 0 || res.PerStepSec < best {
			best = res.PerStepSec
			stats = res.Net
		}
	}
	return best, stats, nil
}

// Ethernet returns a fresh shared-bus 10 Mbps network, the paper's
// testbed, wrapped for the experiment engine.
func Ethernet() netsim.Network { return netsim.AsNetwork(netsim.DefaultEthernet()) }

// PaperHosts selects p hosts from the paper's 25-workstation pool with the
// section-4.1 policy: 715 models first, then 720s, then 710s.
func PaperHosts(p int) []*cluster.Host {
	c := cluster.NewPaperCluster()
	c.Advance(30 * time.Minute) // quiet pool, users idle
	return c.SelectFree(p, cluster.DefaultPolicy())
}

// Efficiency2D measures parallel efficiency for a 2D decomposition with
// square subregions of side l, following the paper: the problem grows with
// the decomposition (grid = l*JX by l*JY), hosts come from the paper pool,
// and T_1 is the 715/50 integrating the whole grid.
func Efficiency2D(jx, jy, l int, method string, net netsim.Network) (f, speedup float64, stats netsim.Stats, err error) {
	d, err := decomp.New2D(jx, jy, l*jx, l*jy, stencilFor(method))
	if err != nil {
		return 0, 0, netsim.Stats{}, err
	}
	hosts := PaperHosts(d.P())
	if len(hosts) < d.P() {
		return 0, 0, netsim.Stats{}, fmt.Errorf("perf: pool exhausted at P=%d", d.P())
	}
	specs, err := Build2D(d, method, hosts)
	if err != nil {
		return 0, 0, netsim.Stats{}, err
	}
	perStep, stats, err := Measure(specs, net, 0)
	if err != nil {
		return 0, 0, netsim.Stats{}, err
	}
	t1 := SerialTime(d.GX*d.GY, method)
	f = t1 / (float64(d.P()) * perStep)
	return f, f * float64(d.P()), stats, nil
}

// Efficiency3D measures a 3D decomposition with cubic subregions of side l.
func Efficiency3D(jx, jy, jz, l int, method string, net netsim.Network) (f, speedup float64, stats netsim.Stats, err error) {
	d, err := decomp.New3D(jx, jy, jz, l*jx, l*jy, l*jz)
	if err != nil {
		return 0, 0, netsim.Stats{}, err
	}
	hosts := PaperHosts(d.P())
	if len(hosts) < d.P() {
		return 0, 0, netsim.Stats{}, fmt.Errorf("perf: pool exhausted at P=%d", d.P())
	}
	specs, err := Build3D(d, method, hosts)
	if err != nil {
		return 0, 0, netsim.Stats{}, err
	}
	perStep, stats, err := Measure(specs, net, 0)
	if err != nil {
		return 0, 0, netsim.Stats{}, err
	}
	t1 := SerialTime(d.GX*d.GY*d.GZ, method)
	f = t1 / (float64(d.P()) * perStep)
	return f, f * float64(d.P()), stats, nil
}

func stencilFor(method string) decomp.Stencil {
	if method == LB2D || method == LB3D {
		return decomp.Full
	}
	return decomp.Star
}

// fig5Decomps are the decompositions of figures 5-8.
var fig5Decomps = []struct {
	jx, jy int
	label  string
}{
	{2, 2, "(2x2)"},
	{3, 3, "(3x3)"},
	{4, 4, "(4x4)"},
	{5, 4, "(5x4)"},
}

// fig5Sides are the subregion side lengths swept in figures 5-8.
var fig5Sides = []int{20, 30, 50, 75, 100, 125, 150, 200, 250, 300}

// FigEfficiency2D regenerates figure 5 (method lb2d) or figure 7 (fd2d):
// efficiency versus sqrt(N) for the four decompositions.
func FigEfficiency2D(method string) ([]Series, error) {
	var out []Series
	for _, dc := range fig5Decomps {
		s := Series{Label: dc.label}
		for _, l := range fig5Sides {
			f, _, _, err := Efficiency2D(dc.jx, dc.jy, l, method, Ethernet())
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: float64(l), Y: f})
		}
		out = append(out, s)
	}
	return out, nil
}

// FigSpeedup2D regenerates figure 6 (lb2d) or figure 8 (fd2d): speedup
// versus sqrt(N).
func FigSpeedup2D(method string) ([]Series, error) {
	eff, err := FigEfficiency2D(method)
	if err != nil {
		return nil, err
	}
	for i, dc := range fig5Decomps {
		p := float64(dc.jx * dc.jy)
		for j := range eff[i].Points {
			eff[i].Points[j].Y = model.Speedup(eff[i].Points[j].Y, int(p))
		}
	}
	return eff, nil
}

// Fig9 regenerates figure 9: efficiency versus P for a scaled problem,
// 2D (P x 1) at 120^2 nodes per processor versus 3D (P x 1 x 1) at 25^3,
// both lattice Boltzmann.
func Fig9() ([]Series, error) {
	ps := []int{2, 4, 6, 8, 10, 12, 14, 16, 18, 20}
	s2 := Series{Label: "2D (P x 1), 120^2 per processor"}
	s3 := Series{Label: "3D (P x 1 x 1), 25^3 per processor"}
	for _, p := range ps {
		f2, _, _, err := Efficiency2D(p, 1, 120, LB2D, Ethernet())
		if err != nil {
			return nil, err
		}
		s2.Points = append(s2.Points, Point{X: float64(p), Y: f2})
		f3, _, _, err := Efficiency3D(p, 1, 1, 25, LB3D, Ethernet())
		if err != nil {
			return nil, err
		}
		s3.Points = append(s3.Points, Point{X: float64(p), Y: f3})
	}
	return []Series{s2, s3}, nil
}

// fig10Decomps are the 3D decompositions of figures 10-11.
var fig10Decomps = []struct {
	jx, jy, jz int
	label      string
}{
	{2, 2, 2, "(2x2x2)"},
	{3, 2, 2, "(3x2x2)"},
	{4, 2, 2, "(4x2x2)"},
	{3, 3, 2, "(3x3x2)"},
}

var fig10Sides = []int{10, 15, 20, 25, 30, 35, 40}

// Fig10 regenerates figure 10: 3D lattice Boltzmann efficiency versus
// subregion side for several decompositions.
func Fig10() ([]Series, error) {
	var out []Series
	for _, dc := range fig10Decomps {
		s := Series{Label: dc.label}
		for _, l := range fig10Sides {
			f, _, _, err := Efficiency3D(dc.jx, dc.jy, dc.jz, l, LB3D, Ethernet())
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: float64(l), Y: f})
		}
		out = append(out, s)
	}
	return out, nil
}

// Fig11 regenerates figure 11: 3D speedup versus total problem size; finer
// decompositions do not help because the network is the bottleneck.
func Fig11() ([]Series, error) {
	var out []Series
	for _, dc := range fig10Decomps {
		s := Series{Label: dc.label}
		for _, l := range fig10Sides {
			_, sp, _, err := Efficiency3D(dc.jx, dc.jy, dc.jz, l, LB3D, Ethernet())
			if err != nil {
				return nil, err
			}
			total := float64(dc.jx*dc.jy*dc.jz) * float64(l*l*l)
			s.Points = append(s.Points, Point{X: total, Y: sp})
		}
		out = append(out, s)
	}
	return out, nil
}

// Fig12 regenerates figure 12: the theoretical 2D shared-bus efficiency of
// equation 20 versus sqrt(N) at Ucalc/Vcom = 2/3 for (P,m) = (4,2), (9,3),
// (16,4), (20,4).
func Fig12() []Series {
	cfg := []struct {
		p, m  int
		label string
	}{
		{4, 2, "P=4, m=2"},
		{9, 3, "P=9, m=3"},
		{16, 4, "P=16, m=4"},
		{20, 4, "P=20, m=4"},
	}
	var out []Series
	for _, c := range cfg {
		s := Series{Label: c.label}
		for _, l := range fig5Sides {
			n := float64(l * l)
			s.Points = append(s.Points, Point{
				X: float64(l),
				Y: model.SharedBusEfficiency2D(n, c.p, c.m, model.PaperCalibration),
			})
		}
		out = append(out, s)
	}
	return out
}

// Fig13 regenerates figure 13: theoretical efficiency versus P; 2D with
// N = 125^2, m = 2 (equation 20) against 3D with N = 25^3, m = 2
// (equation 21).
func Fig13() []Series {
	s2 := Series{Label: "2D model, N=125^2, m=2"}
	s3 := Series{Label: "3D model, N=25^3, m=2"}
	for p := 2; p <= 20; p++ {
		s2.Points = append(s2.Points, Point{
			X: float64(p),
			Y: model.SharedBusEfficiency2D(125*125, p, 2, model.PaperCalibration),
		})
		s3.Points = append(s3.Points, Point{
			X: float64(p),
			Y: model.SharedBusEfficiency3D(25*25*25, p, 2, model.PaperCalibration),
		})
	}
	return []Series{s2, s3}
}

// AblationFCFS compares first-come-first-served against strict-order
// communication (appendix C) on a (P x 1) chain under time-sharing delay
// spikes: with probability spikeProb a process's step takes twice as long
// ("small delays are inevitable in time-sharing UNIX systems, and strict
// ordering amplifies them to global delays"). Identical delay realizations
// are injected in both modes.
func AblationFCFS(p, l int, spikeProb float64) (fcfs, strict float64, err error) {
	d, err := decomp.New2D(p, 1, l*p, l, decomp.Full)
	if err != nil {
		return 0, 0, err
	}
	specs, err := Build2D(d, LB2D, PaperHosts(p))
	if err != nil {
		return 0, 0, err
	}
	run := func(strictOrder bool) (float64, error) {
		res, err := Run(&Spec{
			Workers:     specs,
			Steps:       5 * MeasureSteps, // long enough for pipeline stalls to accumulate
			Bus:         netsim.DefaultEthernet(),
			SpikeProb:   spikeProb,
			SpikeFrac:   1.0,
			Seed:        7,
			StrictOrder: strictOrder,
		})
		if err != nil {
			return 0, err
		}
		return res.PerStepSec, nil
	}
	if fcfs, err = run(false); err != nil {
		return 0, 0, err
	}
	if strict, err = run(true); err != nil {
		return 0, 0, err
	}
	return fcfs, strict, nil
}

// MigrationCost quantifies section 5.1: with one ~30 s migration every
// ~45 minutes, the fraction of lost time.
func MigrationCost() float64 {
	return model.MigrationOverhead(30, 45*60)
}

// FutureNetworks implements the paper's outlook ("it is expected that new
// technologies in the near future such as Ethernet switches, FDDI and ATM
// networks will make practical three-dimensional simulations of fluid
// dynamics on a cluster of workstations"): the figure-9 3D scaled problem,
// (P x 1 x 1) at 25^3 nodes per processor, on the shared bus versus those
// three fabrics.
func FutureNetworks() ([]Series, error) {
	nets := []struct {
		label string
		mk    func() netsim.Network
	}{
		{"shared 10 Mbps Ethernet", Ethernet},
		{"switched 10 Mbps Ethernet", func() netsim.Network { return netsim.SwitchedEthernet() }},
		{"FDDI 100 Mbps", func() netsim.Network { return netsim.FDDI() }},
		{"ATM 155 Mbps", func() netsim.Network { return netsim.ATM() }},
	}
	ps := []int{2, 4, 8, 12, 16, 20}
	var out []Series
	for _, n := range nets {
		s := Series{Label: n.label}
		for _, p := range ps {
			f, _, _, err := Efficiency3D(p, 1, 1, 25, LB3D, n.mk())
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: float64(p), Y: f})
		}
		out = append(out, s)
	}
	return out, nil
}

// DynamicVsMigration compares the paper's choice (fixed-size subregions
// plus automatic migration, section 1.1) against the alternative it cites,
// dynamic allocation of processor workload (Cap & Strumpen): when one host
// slows to a fraction of its speed,
//
//   - "ignore": keep computing; every step waits for the slow host;
//   - "migrate": pay a one-off downtime (the ~30 s migration), then run at
//     full speed on a fresh host;
//   - "dynamic": repartition so the slow host gets proportionally fewer
//     nodes; all hosts stay busy, but the whole problem is redistributed
//     (a full state's worth of network traffic) and the geometry must be
//     re-balanced.
//
// It returns the effective efficiency of each policy over a horizon of
// `steps` integration steps of a (P x 1) LB chain with side-l subregions.
func DynamicVsMigration(p, l, steps int, slowFactor float64) (ignore, migrate, dynamic float64, err error) {
	if slowFactor <= 0 || slowFactor > 1 {
		return 0, 0, 0, fmt.Errorf("perf: slow factor %v outside (0, 1]", slowFactor)
	}
	d, err := decomp.New2D(p, 1, l*p, l, decomp.Full)
	if err != nil {
		return 0, 0, 0, err
	}
	hosts := PaperHosts(p)
	specs, err := Build2D(d, LB2D, hosts)
	if err != nil {
		return 0, 0, 0, err
	}
	t1 := SerialTime(d.GX*d.GY, LB2D)
	perfOf := func(ws []WorkerSpec) (float64, error) {
		per, _, err := Measure(ws, Ethernet(), 0)
		if err != nil {
			return 0, err
		}
		return t1 / (float64(p) * per), nil
	}

	// Ignore: host 0 computes 1/slowFactor slower.
	slowed := make([]WorkerSpec, len(specs))
	copy(slowed, specs)
	slowed[0].StepComputeSec = specs[0].StepComputeSec / slowFactor
	if ignore, err = perfOf(slowed); err != nil {
		return 0, 0, 0, err
	}

	// Migrate: full speed after a 30-second downtime amortized over the
	// horizon (the paper's measured migration cost).
	healthy, err := perfOf(specs)
	if err != nil {
		return 0, 0, 0, err
	}
	horizon := float64(steps) * t1 / float64(p) / healthy
	migrate = healthy * horizon / (horizon + 30.0)

	// Dynamic: resize subregions so per-host time equalizes. Host 0 at
	// speed s gets a share s/(P-1+s) of the rows; the repartition ships
	// the whole state once (totalNodes * 12 fields * 8 bytes over the
	// bus) and this cost is amortized over the horizon.
	share := slowFactor / (float64(p-1) + slowFactor)
	resized := make([]WorkerSpec, len(specs))
	copy(resized, specs)
	totalNodes := float64(d.GX * d.GY)
	slowNodes := totalNodes * share
	fastNodes := (totalNodes - slowNodes) / float64(p-1)
	resized[0].StepComputeSec = slowNodes / (hosts[0].Speed(LB2D) * slowFactor)
	for i := 1; i < p; i++ {
		resized[i].StepComputeSec = fastNodes / hosts[i].Speed(LB2D)
	}
	dynEff, err := perfOf(resized)
	if err != nil {
		return 0, 0, 0, err
	}
	repartition := totalNodes * 12 * 8 * 8 / 10e6 // seconds on the bus
	horizonDyn := float64(steps) * t1 / float64(p) / dynEff
	dynamic = dynEff * horizonDyn / (horizonDyn + repartition)
	return ignore, migrate, dynamic, nil
}
