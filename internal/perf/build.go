package perf

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/decomp"
)

// Method names reused from the cluster speed table.
const (
	LB2D = "lb2d"
	FD2D = "fd2d"
	LB3D = "lb3d"
	FD3D = "fd3d"
)

// phaseFractions splits a method's per-step compute across its phases.
// The splits reflect the relative operation counts of the kernels; the
// efficiency results are insensitive to them because only the total
// compute and the message pattern matter at the step scale.
func phaseFractions(method string) []float64 {
	switch method {
	case LB2D:
		// relax+shift, then macroscopics+filter.
		return []float64{0.8, 0.2}
	case FD2D, FD3D:
		// velocity update, density update, filter.
		return []float64{0.55, 0.25, 0.20}
	case LB3D:
		// relax, two sweep barriers, shift+macroscopics+filter.
		return []float64{0.5, 0, 0, 0.5}
	}
	panic(fmt.Sprintf("perf: unknown method %q", method))
}

const bytesPerValue = 8

// Build2D constructs the per-step pattern of a 2D decomposition running
// the given method on the given hosts (hosts[rank] serves rank). Message
// sizes follow section 6: the lattice Boltzmann method sends one message
// per neighbour carrying 3 values per boundary node (plus single-value
// corner messages), the finite-difference method two messages per side
// neighbour carrying 2 and 1 values per boundary node.
//
// StepComputeSec prices a rank's compute as nodes/speed — the paper's
// serial-equivalent per-rank work. This is deliberate: the solvers'
// intra-rank worker slabs (core's Workers knob) speed up wall-clock
// execution without changing the modelled workstation speeds, so the
// efficiency and decomposition figures built on these specs reproduce
// the paper's single-threaded-workstation accounting regardless of how
// the host running the reproduction is parallelized.
func Build2D(d *decomp.Decomp2D, method string, hosts []*cluster.Host) ([]WorkerSpec, error) {
	if len(hosts) < d.P() {
		return nil, fmt.Errorf("perf: %d hosts for %d subregions", len(hosts), d.P())
	}
	fracs := phaseFractions(method)
	specs := make([]WorkerSpec, d.P())
	for rank := 0; rank < d.P(); rank++ {
		sub := d.ByRank(rank)
		w := WorkerSpec{
			Rank:           rank,
			StepComputeSec: float64(sub.Nodes()) / hosts[rank].Speed(method),
			PhaseFrac:      fracs,
			Out:            make([][]OutMsg, len(fracs)),
			Expect:         make([]int, len(fracs)),
		}
		sideLen := func(dir decomp.Dir) int {
			if dir == decomp.West || dir == decomp.East {
				return sub.NY
			}
			return sub.NX
		}
		switch method {
		case LB2D:
			// One message per neighbour after phase 0; sides carry the
			// three crossing populations (3L-2 values after corner
			// trimming), corners one value.
			for _, dir := range decomp.Dirs(decomp.Full) {
				n := d.Neighbor(sub, dir)
				if n == nil {
					continue
				}
				values := 1 // corner
				if dir == decomp.West || dir == decomp.East || dir == decomp.South || dir == decomp.North {
					values = 3*sideLen(dir) - 2
				}
				w.Out[0] = append(w.Out[0], OutMsg{Dst: n.Rank, Bytes: values * bytesPerValue})
				w.Expect[0]++
			}
		case FD2D:
			// Two messages per side neighbour: velocities (2 values per
			// boundary node) after phase 0, density (1 value) after
			// phase 1.
			for _, dir := range decomp.Dirs(decomp.Star) {
				n := d.Neighbor(sub, dir)
				if n == nil {
					continue
				}
				w.Out[0] = append(w.Out[0], OutMsg{Dst: n.Rank, Bytes: 2 * sideLen(dir) * bytesPerValue})
				w.Expect[0]++
				w.Out[1] = append(w.Out[1], OutMsg{Dst: n.Rank, Bytes: 1 * sideLen(dir) * bytesPerValue})
				w.Expect[1]++
			}
		default:
			return nil, fmt.Errorf("perf: method %q is not 2D", method)
		}
		specs[rank] = w
	}
	return specs, nil
}

// Build3D constructs the pattern of a 3D decomposition: LB sends the five
// crossing populations per face node in its x/y/z sweep phases, FD sends
// velocities (3 values) then density (1 value) per face node.
func Build3D(d *decomp.Decomp3D, method string, hosts []*cluster.Host) ([]WorkerSpec, error) {
	if len(hosts) < d.P() {
		return nil, fmt.Errorf("perf: %d hosts for %d subregions", len(hosts), d.P())
	}
	fracs := phaseFractions(method)
	specs := make([]WorkerSpec, d.P())
	for rank := 0; rank < d.P(); rank++ {
		sub := d.ByRank(rank)
		w := WorkerSpec{
			Rank:           rank,
			StepComputeSec: float64(sub.Nodes()) / hosts[rank].Speed(method),
			PhaseFrac:      fracs,
			Out:            make([][]OutMsg, len(fracs)),
			Expect:         make([]int, len(fracs)),
		}
		faceArea := func(dir decomp.Dir3) int {
			switch dir {
			case decomp.West3, decomp.East3:
				return sub.NY * sub.NZ
			case decomp.South3, decomp.North3:
				return sub.NX * sub.NZ
			default:
				return sub.NX * sub.NY
			}
		}
		switch method {
		case LB3D:
			phaseOf := map[decomp.Dir3]int{
				decomp.West3: 0, decomp.East3: 0,
				decomp.South3: 1, decomp.North3: 1,
				decomp.Down3: 2, decomp.Up3: 2,
			}
			for _, dir := range decomp.Dirs3() {
				n := d.Neighbor(sub, dir)
				if n == nil {
					continue
				}
				ph := phaseOf[dir]
				w.Out[ph] = append(w.Out[ph], OutMsg{Dst: n.Rank, Bytes: 5 * faceArea(dir) * bytesPerValue})
				w.Expect[ph]++
			}
		case FD3D:
			for _, dir := range decomp.Dirs3() {
				n := d.Neighbor(sub, dir)
				if n == nil {
					continue
				}
				w.Out[0] = append(w.Out[0], OutMsg{Dst: n.Rank, Bytes: 3 * faceArea(dir) * bytesPerValue})
				w.Expect[0]++
				w.Out[1] = append(w.Out[1], OutMsg{Dst: n.Rank, Bytes: 1 * faceArea(dir) * bytesPerValue})
				w.Expect[1]++
			}
		default:
			return nil, fmt.Errorf("perf: method %q is not 3D", method)
		}
		specs[rank] = w
	}
	return specs, nil
}

// Hosts715 returns n idle 715/50 hosts, the normalization reference of
// section 7 ("it makes sense to normalize our results using the
// performance of the 715 model").
func Hosts715(n int) []*cluster.Host {
	hosts := make([]*cluster.Host, n)
	for i := range hosts {
		hosts[i] = cluster.NewHost(fmt.Sprintf("hp715-%02d", i), cluster.HP715)
	}
	return hosts
}

// SerialTime returns T_1: the time one idle 715/50 needs to integrate the
// whole problem of totalNodes for one step.
func SerialTime(totalNodes int, method string) float64 {
	h := cluster.NewHost("ref", cluster.HP715)
	return float64(totalNodes) / h.Speed(method)
}
