package perf

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/decomp"
	"repro/internal/netsim"
)

// freeBus returns an effectively infinite network: communication costs
// nothing, so measured efficiency must be bounded only by host speeds.
func freeBus() netsim.Network {
	return netsim.AsNetwork(&netsim.Bus{BandwidthBps: 1e15, OverheadSec: 0, FrameBytes: 0})
}

func TestSingleWorkerTiming(t *testing.T) {
	spec := &Spec{
		Workers: []WorkerSpec{{
			Rank:           0,
			StepComputeSec: 0.25,
			PhaseFrac:      []float64{1},
			Out:            [][]OutMsg{nil},
			Expect:         []int{0},
		}},
		Steps: 4,
		Net:   freeBus(),
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ElapsedSec-1.0) > 1e-9 {
		t.Errorf("elapsed %v, want 1.0", res.ElapsedSec)
	}
	if math.Abs(res.PerStepSec-0.25) > 1e-9 {
		t.Errorf("per-step %v, want 0.25", res.PerStepSec)
	}
}

func TestTwoWorkerExchangeBlocking(t *testing.T) {
	// Worker 1 is twice as slow; worker 0 must wait for its message, so
	// both advance at worker 1's pace.
	mk := func(rank int, compute float64, peer int) WorkerSpec {
		return WorkerSpec{
			Rank:           rank,
			StepComputeSec: compute,
			PhaseFrac:      []float64{1},
			Out:            [][]OutMsg{{{Dst: peer, Bytes: 0}}},
			Expect:         []int{1},
		}
	}
	spec := &Spec{
		Workers: []WorkerSpec{mk(0, 0.1, 1), mk(1, 0.2, 0)},
		Steps:   10,
		Net:     freeBus(),
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PerStepSec-0.2) > 1e-6 {
		t.Errorf("per-step %v, want 0.2 (slowest worker)", res.PerStepSec)
	}
}

func TestBusSerializationCouplesWorkers(t *testing.T) {
	// Two isolated workers (no exchanges) but large broadcast messages on
	// a slow bus: per-step time grows beyond pure compute when messages
	// from both workers share the bus.
	bus := &netsim.Bus{BandwidthBps: 1e6, OverheadSec: 0, FrameBytes: 0}
	mk := func(rank, peer int) WorkerSpec {
		return WorkerSpec{
			Rank:           rank,
			StepComputeSec: 0.01,
			PhaseFrac:      []float64{1},
			Out:            [][]OutMsg{{{Dst: peer, Bytes: 12500}}}, // 0.1 s each
			Expect:         []int{1},
		}
	}
	spec := &Spec{Workers: []WorkerSpec{mk(0, 1), mk(1, 0)}, Steps: 5, Net: netsim.AsNetwork(bus)}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Two 0.1 s messages per step on one bus: at least 0.2 s per step.
	if res.PerStepSec < 0.19 {
		t.Errorf("per-step %v; bus serialization not enforced", res.PerStepSec)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(&Spec{}); err == nil {
		t.Error("empty spec accepted")
	}
	bad := &Spec{
		Workers: []WorkerSpec{{
			Rank: 0, StepComputeSec: 1,
			PhaseFrac: []float64{0.5, 0.2}, // sums to 0.7
			Out:       [][]OutMsg{nil, nil},
			Expect:    []int{0, 0},
		}},
		Steps: 1,
		Net:   freeBus(),
	}
	if _, err := Run(bad); err == nil {
		t.Error("bad phase fractions accepted")
	}
}

func TestBuild2DPattern(t *testing.T) {
	d, err := decomp.New2D(3, 3, 90, 90, decomp.Full)
	if err != nil {
		t.Fatal(err)
	}
	hosts := Hosts715(9)
	specs, err := Build2D(d, LB2D, hosts)
	if err != nil {
		t.Fatal(err)
	}
	// The centre subregion has 8 neighbours: 4 sides + 4 corners.
	center := specs[d.Sub(1, 1).Rank]
	if len(center.Out[0]) != 8 || center.Expect[0] != 8 {
		t.Errorf("centre has %d out, %d expected; want 8, 8", len(center.Out[0]), center.Expect[0])
	}
	// Side messages carry (3L-2)*8 bytes, corners 8 bytes.
	var sides, corners int
	for _, m := range center.Out[0] {
		switch m.Bytes {
		case (3*30 - 2) * 8:
			sides++
		case 8:
			corners++
		}
	}
	if sides != 4 || corners != 4 {
		t.Errorf("sides %d corners %d, want 4 and 4", sides, corners)
	}
	// Compute time: 900 nodes at the 715 speed.
	want := 900.0 / (cluster.BaseNodesPerSecond * 1.0)
	if math.Abs(center.StepComputeSec-want) > 1e-12 {
		t.Errorf("compute %v, want %v", center.StepComputeSec, want)
	}

	// FD: star neighbours only, two messages per neighbour.
	fdSpecs, err := Build2D(d, FD2D, hosts)
	if err != nil {
		t.Fatal(err)
	}
	fc := fdSpecs[d.Sub(1, 1).Rank]
	if len(fc.Out[0]) != 4 || len(fc.Out[1]) != 4 || len(fc.Out[2]) != 0 {
		t.Errorf("FD message counts %d/%d/%d, want 4/4/0",
			len(fc.Out[0]), len(fc.Out[1]), len(fc.Out[2]))
	}
	if fc.Out[0][0].Bytes != 2*30*8 || fc.Out[1][0].Bytes != 30*8 {
		t.Errorf("FD message sizes %d, %d", fc.Out[0][0].Bytes, fc.Out[1][0].Bytes)
	}
}

func TestBuild3DPattern(t *testing.T) {
	d, err := decomp.New3D(2, 1, 1, 50, 25, 25)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := Build3D(d, LB3D, Hosts715(2))
	if err != nil {
		t.Fatal(err)
	}
	// Pencil decomposition: one x-face neighbour, 5 populations per node.
	w := specs[0]
	if len(w.Out[0]) != 1 || w.Out[0][0].Bytes != 5*25*25*8 {
		t.Errorf("3D LB x-face message wrong: %+v", w.Out[0])
	}
	if len(w.Out[1]) != 0 && len(w.Out[2]) != 0 {
		t.Error("pencil decomposition should have no y/z messages")
	}
}

func TestEfficiencyPerfectNetwork(t *testing.T) {
	// With free communication and homogeneous 715 hosts, efficiency ~1.
	d, _ := decomp.New2D(4, 4, 400, 400, decomp.Full)
	specs, err := Build2D(d, LB2D, Hosts715(16))
	if err != nil {
		t.Fatal(err)
	}
	perStep, _, err := Measure(specs, freeBus(), 0)
	if err != nil {
		t.Fatal(err)
	}
	t1 := SerialTime(400*400, LB2D)
	f := t1 / (16 * perStep)
	if math.Abs(f-1) > 1e-6 {
		t.Errorf("perfect-network efficiency %v, want 1", f)
	}
}

func TestEfficiencyShapes(t *testing.T) {
	// The headline result: 2D efficiency around 80% with 20 workstations
	// at production subregion sizes (the paper's abstract).
	f20, _, _, err := Efficiency2D(5, 4, 200, LB2D, Ethernet())
	if err != nil {
		t.Fatal(err)
	}
	if f20 < 0.70 || f20 > 0.95 {
		t.Errorf("(5x4) L=200 efficiency %v, want ~0.8", f20)
	}
	// Efficiency grows with subregion size (figure 5).
	fSmall, _, _, err := Efficiency2D(5, 4, 50, LB2D, Ethernet())
	if err != nil {
		t.Fatal(err)
	}
	if fSmall >= f20 {
		t.Errorf("efficiency did not grow with N: %v vs %v", fSmall, f20)
	}
	// FD decays faster than LB at small subregions (figures 7 vs 5).
	fFD, _, _, err := Efficiency2D(5, 4, 50, FD2D, Ethernet())
	if err != nil {
		t.Fatal(err)
	}
	if fFD >= fSmall {
		t.Errorf("FD %v should fall below LB %v at small N", fFD, fSmall)
	}
	// 3D collapses harder than 2D at the same per-processor node count
	// (figure 9): 120^2 = 14400 vs 25^3 = 15625.
	f2d, _, _, err := Efficiency2D(16, 1, 120, LB2D, Ethernet())
	if err != nil {
		t.Fatal(err)
	}
	f3d, _, _, err := Efficiency3D(16, 1, 1, 25, LB3D, Ethernet())
	if err != nil {
		t.Fatal(err)
	}
	if f3d >= f2d-0.1 {
		t.Errorf("3D efficiency %v should collapse well below 2D %v", f3d, f2d)
	}
}

func TestNetworkErrorsAppearIn3D(t *testing.T) {
	// The saturated 3D runs must show overload errors (the paper's
	// "frequent network errors because of excessive network traffic")
	// while comfortable 2D runs show none.
	_, _, st3, err := Efficiency3D(3, 3, 2, 25, LB3D, Ethernet())
	if err != nil {
		t.Fatal(err)
	}
	if st3.Errors == 0 {
		t.Errorf("no network errors in the saturated 3D run: %+v", st3)
	}
	_, _, st2, err := Efficiency2D(4, 4, 200, LB2D, Ethernet())
	if err != nil {
		t.Fatal(err)
	}
	if st2.Errors != 0 {
		t.Errorf("2D run reported network errors: %+v", st2)
	}
}

func TestStrictOrderAblation(t *testing.T) {
	// Appendix C: on a quiet cluster strict ordering is competitive (it
	// was designed to pipeline the bus), but with time-sharing delay
	// spikes FCFS wins.
	fcfsQ, strictQ, err := AblationFCFS(10, 120, 0)
	if err != nil {
		t.Fatal(err)
	}
	if strictQ > fcfsQ*1.05 {
		t.Errorf("quiet cluster: strict %v much worse than fcfs %v", strictQ, fcfsQ)
	}
	fcfsD, strictD, err := AblationFCFS(10, 120, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if strictD <= fcfsD {
		t.Errorf("delayed cluster: strict %v should exceed fcfs %v", strictD, fcfsD)
	}
}

func TestJitterDeterminism(t *testing.T) {
	d, _ := decomp.New2D(4, 1, 200, 50, decomp.Full)
	specs, _ := Build2D(d, LB2D, Hosts715(4))
	run := func() float64 {
		res, err := Run(&Spec{
			Workers: specs, Steps: 10, Bus: netsim.DefaultEthernet(),
			JitterFrac: 0.2, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.ElapsedSec
	}
	if a, b := run(), run(); a != b {
		t.Errorf("jittered runs differ: %v vs %v", a, b)
	}
}

func TestFigureGeneratorsProduceSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweeps are slow")
	}
	for name, gen := range map[string]func() ([]Series, error){
		"fig5":  func() ([]Series, error) { return FigEfficiency2D(LB2D) },
		"fig7":  func() ([]Series, error) { return FigEfficiency2D(FD2D) },
		"fig9":  Fig9,
		"fig10": Fig10,
		"fig11": Fig11,
	} {
		series, err := gen()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(series) == 0 {
			t.Fatalf("%s: no series", name)
		}
		for _, s := range series {
			if len(s.Points) == 0 {
				t.Errorf("%s %q: empty series", name, s.Label)
			}
			for _, p := range s.Points {
				if p.Y < 0 || (p.Y > float64(25) /* speedup bound */) {
					t.Errorf("%s %q: implausible value %v", name, s.Label, p.Y)
				}
			}
		}
	}
	// Model figures are cheap and deterministic.
	if got := Fig12(); len(got) != 4 {
		t.Errorf("fig12 series = %d", len(got))
	}
	if got := Fig13(); len(got) != 2 {
		t.Errorf("fig13 series = %d", len(got))
	}
}

func TestMigrationCost(t *testing.T) {
	if c := MigrationCost(); c < 0.005 || c > 0.02 {
		t.Errorf("migration cost %v, want ~1%%", c)
	}
}

func TestFutureNetworksLiftThe3DCollapse(t *testing.T) {
	// The conclusion's prediction: at P = 16 the shared bus is deep in
	// collapse while switched Ethernet, FDDI and ATM keep the same 3D
	// problem efficient.
	series, err := FutureNetworks()
	if err != nil {
		t.Fatal(err)
	}
	at := func(s Series, p float64) float64 {
		for _, pt := range s.Points {
			if pt.X == p {
				return pt.Y
			}
		}
		t.Fatalf("series %q has no P=%v", s.Label, p)
		return 0
	}
	bus, sw, fddi, atm := at(series[0], 16), at(series[1], 16), at(series[2], 16), at(series[3], 16)
	if bus > 0.7 {
		t.Errorf("shared bus at P=16: %v, expected collapse below 0.7", bus)
	}
	if sw < bus+0.15 {
		t.Errorf("switched Ethernet %v should clearly beat the bus %v", sw, bus)
	}
	if fddi < 0.9 || atm < 0.9 {
		t.Errorf("FDDI %v / ATM %v should keep 3D efficient", fddi, atm)
	}
}

func TestDynamicVsMigration(t *testing.T) {
	ig, mig, dyn, err := DynamicVsMigration(10, 120, 5000, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Ignoring a half-speed host halves throughput (everyone waits).
	if ig > 0.55 {
		t.Errorf("ignore policy %v, expected ~0.5", ig)
	}
	// Both remedies recover most of the loss, and for a static-geometry
	// problem migration is at least as good as dynamic repartitioning
	// (the paper's section-1.1 position).
	if mig < 0.85 || dyn < 0.8 {
		t.Errorf("remedies too weak: migrate %v dynamic %v", mig, dyn)
	}
	if mig < dyn {
		t.Errorf("migration %v should not lose to dynamic allocation %v", mig, dyn)
	}
	if _, _, _, err := DynamicVsMigration(10, 120, 5000, 1.5); err == nil {
		t.Error("slow factor > 1 accepted")
	}
}
