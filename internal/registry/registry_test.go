package registry

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestPublishLookup(t *testing.T) {
	r, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Publish(0, 3, "127.0.0.1:4455"); err != nil {
		t.Fatal(err)
	}
	addr, err := r.Lookup(0, 3, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if addr != "127.0.0.1:4455" {
		t.Errorf("addr = %q", addr)
	}
}

func TestLookupTimesOut(t *testing.T) {
	r, _ := New(t.TempDir())
	r.Poll = time.Millisecond
	start := time.Now()
	if _, err := r.Lookup(0, 9, 30*time.Millisecond); err == nil {
		t.Error("lookup of unpublished rank succeeded")
	}
	if time.Since(start) > time.Second {
		t.Error("lookup did not respect its timeout")
	}
}

func TestLookupWaitsForLatePublish(t *testing.T) {
	r, _ := New(t.TempDir())
	r.Poll = time.Millisecond
	go func() {
		time.Sleep(20 * time.Millisecond)
		r.Publish(0, 1, "late:1")
	}()
	addr, err := r.Lookup(0, 1, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if addr != "late:1" {
		t.Errorf("addr = %q", addr)
	}
}

func TestEpochNamespacing(t *testing.T) {
	r, _ := New(t.TempDir())
	r.Poll = time.Millisecond
	r.Publish(0, 1, "old")
	r.Publish(1, 1, "new")
	a0, _ := r.Lookup(0, 1, time.Second)
	a1, _ := r.Lookup(1, 1, time.Second)
	if a0 != "old" || a1 != "new" {
		t.Errorf("epoch confusion: %q %q", a0, a1)
	}
	if err := r.ClearEpoch(0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Lookup(0, 1, 20*time.Millisecond); err == nil {
		t.Error("cleared epoch still resolves")
	}
	if got, _ := r.Lookup(1, 1, time.Second); got != "new" {
		t.Error("ClearEpoch removed the wrong epoch")
	}
}

func TestUnpublishIdempotent(t *testing.T) {
	r, _ := New(t.TempDir())
	if err := r.Unpublish(0, 5); err != nil {
		t.Errorf("unpublish of missing entry: %v", err)
	}
	r.Publish(0, 5, "x")
	if err := r.Unpublish(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := r.Unpublish(0, 5); err != nil {
		t.Errorf("second unpublish: %v", err)
	}
}

func TestConcurrentPublishers(t *testing.T) {
	r, _ := New(t.TempDir())
	r.Poll = time.Millisecond
	const n = 20
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			r.Publish(0, rank, fmt.Sprintf("addr-%d", rank))
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		addr, err := r.Lookup(0, i, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if addr != fmt.Sprintf("addr-%d", i) {
			t.Errorf("rank %d addr = %q", i, addr)
		}
	}
}

func TestRepublishOverwrites(t *testing.T) {
	r, _ := New(t.TempDir())
	r.Publish(0, 1, "first")
	r.Publish(0, 1, "second")
	if addr, _ := r.Lookup(0, 1, time.Second); addr != "second" {
		t.Errorf("addr = %q, want second", addr)
	}
}
