// Package registry implements the shared-file port registry of section 4.2:
// "each process must first allocate its port numbers for listening to its
// neighbors, and then write the port numbers into a shared file. The
// neighbors must read the shared file before they can connect using
// TCP/IP."
//
// The paper relies on the workstations' common (NFS) file system; here the
// shared directory is any path visible to all workers (for the reproduction,
// a local directory shared by processes on one machine). Entries are
// written atomically (write to a temporary file, then rename) so a reader
// never observes a half-written address, and are namespaced by epoch so
// that the re-opening of channels after a migration (section 5.1) cannot
// confuse stale addresses with fresh ones.
package registry

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Registry is a shared-directory address registry.
type Registry struct {
	Dir string
	// Poll is the interval between lookup retries; the zero value means
	// 2ms. Tests shorten it; real deployments on NFS would lengthen it.
	Poll time.Duration
}

// New creates (if needed) and wraps a shared registry directory.
func New(dir string) (*Registry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	return &Registry{Dir: dir}, nil
}

func (r *Registry) poll() time.Duration {
	if r.Poll > 0 {
		return r.Poll
	}
	return 2 * time.Millisecond
}

func (r *Registry) path(epoch, rank int) string {
	return filepath.Join(r.Dir, fmt.Sprintf("ep%04d-rank%04d.addr", epoch, rank))
}

// Publish records the network address of a rank for the given epoch.
// The write is atomic: concurrent readers see either nothing or the full
// address.
func (r *Registry) Publish(epoch, rank int, addr string) error {
	tmp, err := os.CreateTemp(r.Dir, ".tmp-addr-*")
	if err != nil {
		return fmt.Errorf("registry: publish rank %d: %w", rank, err)
	}
	name := tmp.Name()
	if _, err := tmp.WriteString(addr + "\n"); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("registry: publish rank %d: %w", rank, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("registry: publish rank %d: %w", rank, err)
	}
	if err := os.Rename(name, r.path(epoch, rank)); err != nil {
		os.Remove(name)
		return fmt.Errorf("registry: publish rank %d: %w", rank, err)
	}
	return nil
}

// Lookup polls until the address of (epoch, rank) appears or the timeout
// elapses.
func (r *Registry) Lookup(epoch, rank int, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for {
		data, err := os.ReadFile(r.path(epoch, rank))
		if err == nil {
			return strings.TrimSpace(string(data)), nil
		}
		if !os.IsNotExist(err) {
			return "", fmt.Errorf("registry: lookup rank %d: %w", rank, err)
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("registry: rank %d epoch %d not published within %v", rank, epoch, timeout)
		}
		time.Sleep(r.poll())
	}
}

// Unpublish removes a rank's entry; missing entries are not an error.
func (r *Registry) Unpublish(epoch, rank int) error {
	err := os.Remove(r.path(epoch, rank))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("registry: unpublish rank %d: %w", rank, err)
	}
	return nil
}

// ClearEpoch removes every entry of an epoch, preparing the directory for
// the re-opened channels after a migration.
func (r *Registry) ClearEpoch(epoch int) error {
	matches, err := filepath.Glob(filepath.Join(r.Dir, fmt.Sprintf("ep%04d-rank*.addr", epoch)))
	if err != nil {
		return fmt.Errorf("registry: clear epoch %d: %w", epoch, err)
	}
	for _, m := range matches {
		if err := os.Remove(m); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("registry: clear epoch %d: %w", epoch, err)
		}
	}
	return nil
}
