package grid

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAvoidPageResonance(t *testing.T) {
	cases := []struct {
		n       int
		wantPad bool
	}{
		{512, true},     // 4096 bytes exactly: resonant
		{513, true},     // 4104 bytes, within slack of 4096
		{600, false},    // 4800 bytes, far from a page multiple
		{1024, true},    // 8192 bytes: resonant
		{1000, false},   // 8000 bytes: 192 from multiple, clear
		{512 * 9, true}, // larger exact multiple
		{100, false},    // 800 bytes, below one page but far from 0 mod 4096... 800%4096=800
	}
	for _, c := range cases {
		got := AvoidPageResonance(c.n)
		if c.wantPad && got == c.n {
			t.Errorf("AvoidPageResonance(%d) = %d, expected padding", c.n, got)
		}
		if !c.wantPad && got != c.n {
			t.Errorf("AvoidPageResonance(%d) = %d, expected no padding", c.n, got)
		}
		if got < c.n {
			t.Errorf("AvoidPageResonance(%d) = %d shrank the array", c.n, got)
		}
	}
}

func TestAvoidPageResonanceProperty(t *testing.T) {
	// Property: the returned capacity is never resonant and never smaller.
	f := func(n uint16) bool {
		m := AvoidPageResonance(int(n) + 1)
		if m < int(n)+1 {
			return false
		}
		rem := (m * 8) % PageBytes
		return rem > resonanceSlack && PageBytes-rem > resonanceSlack
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestField2DIndexing(t *testing.T) {
	f := NewField2D(4, 3, 2)
	if f.Stride() != 8 {
		t.Fatalf("stride = %d, want 8", f.Stride())
	}
	// Write a unique value at every node including ghosts; check round-trip.
	for y := -2; y < 5; y++ {
		for x := -2; x < 6; x++ {
			f.Set(x, y, float64(100*y+x))
		}
	}
	for y := -2; y < 5; y++ {
		for x := -2; x < 6; x++ {
			if got := f.At(x, y); got != float64(100*y+x) {
				t.Fatalf("At(%d,%d) = %v, want %v", x, y, got, float64(100*y+x))
			}
		}
	}
}

func TestField2DIdxIsBijective(t *testing.T) {
	f := NewField2D(7, 5, 1)
	seen := map[int]bool{}
	for y := -1; y < 6; y++ {
		for x := -1; x < 8; x++ {
			i := f.Idx(x, y)
			if seen[i] {
				t.Fatalf("Idx(%d,%d) = %d collides", x, y, i)
			}
			seen[i] = true
			if i < 0 || i >= len(f.Data()) {
				t.Fatalf("Idx(%d,%d) = %d out of range [0,%d)", x, y, i, len(f.Data()))
			}
		}
	}
	if len(seen) != len(f.Data()) {
		t.Fatalf("covered %d of %d slots", len(seen), len(f.Data()))
	}
}

func TestField2DFillInteriorLeavesGhosts(t *testing.T) {
	f := NewField2D(3, 3, 1)
	f.Fill(-7)
	f.FillInterior(2)
	if f.At(-1, 0) != -7 || f.At(3, 2) != -7 || f.At(0, -1) != -7 || f.At(2, 3) != -7 {
		t.Error("ghost values clobbered by FillInterior")
	}
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			if f.At(x, y) != 2 {
				t.Errorf("interior (%d,%d) = %v, want 2", x, y, f.At(x, y))
			}
		}
	}
}

func TestField2DCloneAndSwap(t *testing.T) {
	f := NewField2D(5, 4, 1)
	f.Set(2, 2, 11)
	g := f.Clone()
	if !f.InteriorEqual(g, 0) {
		t.Fatal("clone differs from original")
	}
	g.Set(2, 2, 99)
	if f.At(2, 2) != 11 {
		t.Fatal("clone shares storage with original")
	}
	f.Swap(g)
	if f.At(2, 2) != 99 || g.At(2, 2) != 11 {
		t.Fatal("Swap did not exchange storage")
	}
}

func TestField2DSumAndMax(t *testing.T) {
	f := NewField2D(3, 2, 1)
	f.Fill(1000) // ghosts must not contribute
	f.FillInterior(0)
	f.Set(0, 0, 1.5)
	f.Set(2, 1, -4.25)
	if got := f.SumInterior(); math.Abs(got-(1.5-4.25)) > 1e-15 {
		t.Errorf("SumInterior = %v, want %v", got, 1.5-4.25)
	}
	if got := f.MaxAbsInterior(); got != 4.25 {
		t.Errorf("MaxAbsInterior = %v, want 4.25", got)
	}
}

func TestField2DGeometryMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Swap with mismatched geometry did not panic")
		}
	}()
	NewField2D(3, 3, 1).Swap(NewField2D(3, 4, 1))
}

func TestNewField2DRejectsBadDims(t *testing.T) {
	for _, dims := range [][3]int{{0, 3, 1}, {3, 0, 1}, {3, 3, -1}, {-2, 5, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewField2D(%v) did not panic", dims)
				}
			}()
			NewField2D(dims[0], dims[1], dims[2])
		}()
	}
}

func TestField3DIndexing(t *testing.T) {
	f := NewField3D(3, 4, 5, 1)
	for z := -1; z < 6; z++ {
		for y := -1; y < 5; y++ {
			for x := -1; x < 4; x++ {
				f.Set(x, y, z, float64(10000*z+100*y+x))
			}
		}
	}
	for z := -1; z < 6; z++ {
		for y := -1; y < 5; y++ {
			for x := -1; x < 4; x++ {
				if got := f.At(x, y, z); got != float64(10000*z+100*y+x) {
					t.Fatalf("At(%d,%d,%d) = %v", x, y, z, got)
				}
			}
		}
	}
}

func TestField3DIdxCoversStorage(t *testing.T) {
	f := NewField3D(2, 3, 4, 1)
	seen := map[int]bool{}
	for z := -1; z < 5; z++ {
		for y := -1; y < 4; y++ {
			for x := -1; x < 3; x++ {
				i := f.Idx(x, y, z)
				if seen[i] {
					t.Fatalf("index collision at (%d,%d,%d)", x, y, z)
				}
				seen[i] = true
			}
		}
	}
	if len(seen) != len(f.Data()) {
		t.Fatalf("covered %d of %d slots", len(seen), len(f.Data()))
	}
}

func TestField3DCloneSwapEqual(t *testing.T) {
	f := NewField3D(3, 3, 3, 1)
	f.Set(1, 1, 1, 5)
	g := f.Clone()
	if !f.InteriorEqual(g, 0) {
		t.Fatal("clone differs")
	}
	g.Set(1, 1, 1, 6)
	if f.InteriorEqual(g, 0.5) {
		t.Fatal("InteriorEqual too lax")
	}
	if !f.InteriorEqual(g, 1.5) {
		t.Fatal("InteriorEqual tolerance not honoured")
	}
	f.Swap(g)
	if f.At(1, 1, 1) != 6 {
		t.Fatal("Swap failed")
	}
}

func TestField3DSums(t *testing.T) {
	f := NewField3D(2, 2, 2, 1)
	f.Fill(50)
	for z := 0; z < 2; z++ {
		for y := 0; y < 2; y++ {
			for x := 0; x < 2; x++ {
				f.Set(x, y, z, 1)
			}
		}
	}
	if got := f.SumInterior(); got != 8 {
		t.Errorf("SumInterior = %v, want 8", got)
	}
	f.Set(1, 0, 1, -3)
	if got := f.MaxAbsInterior(); got != 3 {
		t.Errorf("MaxAbsInterior = %v, want 3", got)
	}
}

func TestFieldStoragePaddedAgainstResonance(t *testing.T) {
	// 512 floats per row * 8 rows = 4096 elements = 32768 bytes = 8 pages:
	// the capacity must be padded away from the resonant length.
	f := NewField2D(510, 6, 1) // (510+2)*(6+2) = 4096 elements
	if cap(f.Data())*8%PageBytes <= resonanceSlack {
		t.Errorf("storage capacity %d elems is page-resonant", cap(f.Data()))
	}
}
