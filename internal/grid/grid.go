// Package grid provides uniform orthogonal grids with ghost-cell padding,
// the storage substrate shared by the finite-difference and lattice
// Boltzmann solvers.
//
// A Field2D or Field3D stores one scalar fluid variable (density, a velocity
// component, or one lattice Boltzmann population) on the interior nodes of a
// subregion plus H layers of ghost ("padded") nodes on every side. The
// ghost layers hold copies of neighbouring subregions' boundary values, so
// the interior update never needs to know whether it runs serially or as one
// subregion of a distributed computation (section 4.2 of the paper).
//
// Storage is a single flat slice in row-major order. The slice length is
// kept away from near-multiples of 4096 bytes per appendix E of the paper,
// which reports a 2x slowdown on HP9000/700 hardware when array lengths land
// near the virtual-memory page size; AvoidPageResonance reproduces the
// paper's fix of lengthening such arrays by a few hundred bytes.
package grid

import (
	"fmt"
	"math"
)

// PageBytes is the virtual-memory page size the appendix-E padding rule
// guards against.
const PageBytes = 4096

// resonanceSlack is how close (in bytes) an array length must be to a
// multiple of PageBytes before it is considered resonant. The paper pads
// arrays whose byte length is a "near multiple" of the page size.
const resonanceSlack = 64

// padElems is the extra padding, in float64 elements, appended to a resonant
// array. 32 elements = 256 bytes, matching the paper's 200-300 bytes.
const padElems = 32

// AvoidPageResonance returns a slice capacity >= n (in float64 elements)
// whose byte length is not a near multiple of the 4096-byte page size.
// It implements the appendix-E fix: lengthen resonant arrays by 200-300
// bytes so the CPU cache prefetcher does not thrash.
func AvoidPageResonance(n int) int {
	bytes := n * 8
	rem := bytes % PageBytes
	if rem <= resonanceSlack || PageBytes-rem <= resonanceSlack {
		return n + padElems
	}
	return n
}

// Field2D is a scalar field on a 2D uniform orthogonal grid with H ghost
// layers on each side. Interior nodes are addressed 0 <= x < NX,
// 0 <= y < NY; ghost nodes extend to -H and NX+H-1 (resp. NY+H-1).
type Field2D struct {
	NX, NY int // interior node counts
	H      int // ghost layers per side
	sx     int // row stride = NX + 2H
	data   []float64
}

// NewField2D allocates a zeroed field with nx-by-ny interior nodes and h
// ghost layers. It panics if any dimension is non-positive, because a field
// of zero extent is always a programming error in this code base.
func NewField2D(nx, ny, h int) *Field2D {
	if nx <= 0 || ny <= 0 || h < 0 {
		panic(fmt.Sprintf("grid: invalid Field2D dimensions %dx%d h=%d", nx, ny, h))
	}
	sx := nx + 2*h
	n := sx * (ny + 2*h)
	return &Field2D{
		NX: nx, NY: ny, H: h,
		sx:   sx,
		data: make([]float64, n, AvoidPageResonance(n)),
	}
}

// Stride returns the row stride of the underlying storage.
func (f *Field2D) Stride() int { return f.sx }

// Data exposes the raw storage including ghost nodes. Index with
// (y+H)*Stride() + (x+H). Intended for the solvers' inner loops.
func (f *Field2D) Data() []float64 { return f.data }

// Idx returns the flat index of interior node (x, y). Ghost nodes are
// reached with x in [-H, NX+H) and y in [-H, NY+H).
func (f *Field2D) Idx(x, y int) int { return (y+f.H)*f.sx + (x + f.H) }

// At returns the value at node (x, y); ghost offsets are legal.
func (f *Field2D) At(x, y int) float64 { return f.data[f.Idx(x, y)] }

// Set stores v at node (x, y); ghost offsets are legal.
func (f *Field2D) Set(x, y int, v float64) { f.data[f.Idx(x, y)] = v }

// Add adds v to node (x, y).
func (f *Field2D) Add(x, y int, v float64) { f.data[f.Idx(x, y)] += v }

// Fill sets every node, ghosts included, to v.
func (f *Field2D) Fill(v float64) {
	for i := range f.data {
		f.data[i] = v
	}
}

// FillInterior sets every interior node to v, leaving ghosts untouched.
func (f *Field2D) FillInterior(v float64) {
	for y := 0; y < f.NY; y++ {
		row := f.data[f.Idx(0, y) : f.Idx(0, y)+f.NX]
		for i := range row {
			row[i] = v
		}
	}
}

// Clone returns a deep copy of the field.
func (f *Field2D) Clone() *Field2D {
	g := NewField2D(f.NX, f.NY, f.H)
	copy(g.data, f.data)
	return g
}

// CopyFrom copies all nodes (ghosts included) from src, which must have
// identical geometry.
func (f *Field2D) CopyFrom(src *Field2D) {
	if f.NX != src.NX || f.NY != src.NY || f.H != src.H {
		panic("grid: CopyFrom geometry mismatch")
	}
	copy(f.data, src.data)
}

// Swap exchanges the storage of f and g, which must have identical
// geometry. Solvers use it to flip current/next buffers without copying.
func (f *Field2D) Swap(g *Field2D) {
	if f.NX != g.NX || f.NY != g.NY || f.H != g.H {
		panic("grid: Swap geometry mismatch")
	}
	f.data, g.data = g.data, f.data
}

// InteriorEqual reports whether the interior nodes of f and g agree within
// tol, ignoring ghost layers. Fields must have identical interior sizes
// (ghost depth may differ).
func (f *Field2D) InteriorEqual(g *Field2D, tol float64) bool {
	if f.NX != g.NX || f.NY != g.NY {
		return false
	}
	for y := 0; y < f.NY; y++ {
		for x := 0; x < f.NX; x++ {
			if math.Abs(f.At(x, y)-g.At(x, y)) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbsInterior returns the maximum absolute interior value, a cheap
// stability probe used by tests and the monitoring program.
func (f *Field2D) MaxAbsInterior() float64 {
	m := 0.0
	for y := 0; y < f.NY; y++ {
		for x := 0; x < f.NX; x++ {
			if a := math.Abs(f.At(x, y)); a > m {
				m = a
			}
		}
	}
	return m
}

// SumInterior returns the sum of interior values; mass-conservation checks
// use it on the density field.
func (f *Field2D) SumInterior() float64 {
	s := 0.0
	for y := 0; y < f.NY; y++ {
		for x := 0; x < f.NX; x++ {
			s += f.At(x, y)
		}
	}
	return s
}

// Field3D is the three-dimensional analogue of Field2D.
type Field3D struct {
	NX, NY, NZ int
	H          int
	sx, sxy    int
	data       []float64
}

// NewField3D allocates a zeroed 3D field with ghost layers.
func NewField3D(nx, ny, nz, h int) *Field3D {
	if nx <= 0 || ny <= 0 || nz <= 0 || h < 0 {
		panic(fmt.Sprintf("grid: invalid Field3D dimensions %dx%dx%d h=%d", nx, ny, nz, h))
	}
	sx := nx + 2*h
	sxy := sx * (ny + 2*h)
	n := sxy * (nz + 2*h)
	return &Field3D{
		NX: nx, NY: ny, NZ: nz, H: h,
		sx: sx, sxy: sxy,
		data: make([]float64, n, AvoidPageResonance(n)),
	}
}

// StrideX returns the x-row stride; StrideXY the z-plane stride.
func (f *Field3D) StrideX() int  { return f.sx }
func (f *Field3D) StrideXY() int { return f.sxy }

// Data exposes the raw storage including ghosts.
func (f *Field3D) Data() []float64 { return f.data }

// Idx returns the flat index of node (x, y, z); ghost offsets are legal.
func (f *Field3D) Idx(x, y, z int) int {
	return (z+f.H)*f.sxy + (y+f.H)*f.sx + (x + f.H)
}

// At returns the value at node (x, y, z).
func (f *Field3D) At(x, y, z int) float64 { return f.data[f.Idx(x, y, z)] }

// Set stores v at node (x, y, z).
func (f *Field3D) Set(x, y, z int, v float64) { f.data[f.Idx(x, y, z)] = v }

// Add adds v to node (x, y, z).
func (f *Field3D) Add(x, y, z int, v float64) { f.data[f.Idx(x, y, z)] += v }

// Fill sets every node, ghosts included, to v.
func (f *Field3D) Fill(v float64) {
	for i := range f.data {
		f.data[i] = v
	}
}

// Clone returns a deep copy.
func (f *Field3D) Clone() *Field3D {
	g := NewField3D(f.NX, f.NY, f.NZ, f.H)
	copy(g.data, f.data)
	return g
}

// CopyFrom copies all nodes from src, which must have identical geometry.
func (f *Field3D) CopyFrom(src *Field3D) {
	if f.NX != src.NX || f.NY != src.NY || f.NZ != src.NZ || f.H != src.H {
		panic("grid: CopyFrom geometry mismatch")
	}
	copy(f.data, src.data)
}

// Swap exchanges storage with g (identical geometry required).
func (f *Field3D) Swap(g *Field3D) {
	if f.NX != g.NX || f.NY != g.NY || f.NZ != g.NZ || f.H != g.H {
		panic("grid: Swap geometry mismatch")
	}
	f.data, g.data = g.data, f.data
}

// InteriorEqual reports whether interiors agree within tol.
func (f *Field3D) InteriorEqual(g *Field3D, tol float64) bool {
	if f.NX != g.NX || f.NY != g.NY || f.NZ != g.NZ {
		return false
	}
	for z := 0; z < f.NZ; z++ {
		for y := 0; y < f.NY; y++ {
			for x := 0; x < f.NX; x++ {
				if math.Abs(f.At(x, y, z)-g.At(x, y, z)) > tol {
					return false
				}
			}
		}
	}
	return true
}

// SumInterior returns the sum of interior values.
func (f *Field3D) SumInterior() float64 {
	s := 0.0
	for z := 0; z < f.NZ; z++ {
		for y := 0; y < f.NY; y++ {
			for x := 0; x < f.NX; x++ {
				s += f.At(x, y, z)
			}
		}
	}
	return s
}

// MaxAbsInterior returns the maximum absolute interior value.
func (f *Field3D) MaxAbsInterior() float64 {
	m := 0.0
	for z := 0; z < f.NZ; z++ {
		for y := 0; y < f.NY; y++ {
			for x := 0; x < f.NX; x++ {
				if a := math.Abs(f.At(x, y, z)); a > m {
					m = a
				}
			}
		}
	}
	return m
}
