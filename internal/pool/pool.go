// Package pool provides the shared intra-rank worker pool behind the
// solvers' parallel collide-stream kernels.
//
// The paper's parallelism is inter-rank: one subregion per workstation,
// communicating through halo messages. Within one rank the per-cycle
// Relax/Shift/Calculate/Filter updates are per-cell independent (Skordos,
// Phys. Rev. E 48:4823, section 6), so a rank's subregion can additionally
// be cut into contiguous slabs — rows in 2D, z-planes in 3D — updated
// concurrently with disjoint write ranges. Because every node's arithmetic
// is unchanged and no cross-node reductions exist in the kernels, the
// result is bit-identical to the serial sweep at any worker count.
//
// One process-wide pool of GOMAXPROCS goroutines serves every solver in
// the process: co-scheduled ranks (the farm runs many jobs as goroutines)
// share the same physical cores, so per-rank pools would oversubscribe.
// Each solver owns a lightweight Runner that carries the per-call
// bookkeeping; Run submissions that find the pool saturated execute on
// the calling goroutine, so progress never depends on a free worker.
//
// The steady-state path allocates nothing: tasks travel by value on a
// buffered channel, the Runner's WaitGroup is reused across calls, and
// callers pre-build their range closures once at construction.
package pool

import (
	"runtime"
	"sync"
)

// task is one contiguous slab of a Runner's current parallel-for.
type task struct {
	r      *Runner
	lo, hi int
}

var (
	startOnce sync.Once
	tasks     chan task
)

// start lazily launches the shared workers. The pool is sized and the
// queue bounded by GOMAXPROCS at first use; a saturated queue pushes
// work back onto callers rather than growing.
func start() {
	startOnce.Do(func() { //detlint:allow allocsteady -- one-time slab spin-up under sync.Once, amortized over the run
		n := runtime.GOMAXPROCS(0)
		tasks = make(chan task, 4*n) //detlint:allow allocsteady -- one-time queue allocation under sync.Once
		for i := 0; i < n; i++ {
			go func() {
				for t := range tasks {
					t.r.fn(t.lo, t.hi)
					t.r.wg.Done()
				}
			}()
		}
	})
}

// Runner is one caller's handle on the shared pool. A Runner must not be
// used from two goroutines at once (a solver steps on a single goroutine,
// so each solver owns one). The zero value is ready to use.
type Runner struct {
	wg sync.WaitGroup
	fn func(lo, hi int)
}

// Run partitions [0, n) into at most `workers` contiguous slabs and
// invokes fn on each, returning when all slabs are done. workers <= 1 (or
// a trivially small n) calls fn(0, n) on the caller — the serial path.
// fn must only write state disjoint between slabs; under that contract
// the result is independent of the worker count and of which goroutine
// runs which slab.
func (r *Runner) Run(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	start()
	r.fn = fn
	// Slab i is [i*n/w, (i+1)*n/w): deterministic, contiguous, disjoint.
	// The last slab runs on the caller so a saturated pool still makes
	// progress; earlier slabs fall back to the caller when the queue is
	// full.
	lo := 0
	for i := 1; i < workers; i++ {
		hi := i * n / workers
		if hi <= lo {
			continue
		}
		r.wg.Add(1)
		select {
		case tasks <- task{r: r, lo: lo, hi: hi}:
		default:
			fn(lo, hi)
			r.wg.Done()
		}
		lo = hi
	}
	fn(lo, n)
	r.wg.Wait()
	r.fn = nil
}

// DefaultPerRank returns the default intra-rank worker budget for a job
// of `ranks` parallel subprocesses: an even share of GOMAXPROCS, at
// least 1. Co-scheduled ranks run as goroutines in this process, so each
// rank claiming the whole machine would oversubscribe it; the even share
// keeps a P-rank job's total worker demand at about GOMAXPROCS.
func DefaultPerRank(ranks int) int {
	if ranks < 1 {
		ranks = 1
	}
	n := runtime.GOMAXPROCS(0) / ranks
	if n < 1 {
		return 1
	}
	return n
}
