package pool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestRunCoversRangeOnce checks every index is visited exactly once for
// a spread of worker counts, including counts above n and above
// GOMAXPROCS.
func TestRunCoversRangeOnce(t *testing.T) {
	var r Runner
	for _, workers := range []int{0, 1, 2, 3, 7, 16, runtime.GOMAXPROCS(0) + 3} {
		for _, n := range []int{1, 2, 5, 64, 1000} {
			counts := make([]int32, n)
			r.Run(workers, n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&counts[i], 1)
				}
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

// TestRunSlabsAreOrderedAndDisjoint checks the deterministic slab
// geometry: contiguous, increasing, covering [0, n).
func TestRunSlabsAreOrderedAndDisjoint(t *testing.T) {
	var r Runner
	type slab struct{ lo, hi int }
	var got []slab
	lock := make(chan struct{}, 1)
	r.Run(4, 103, func(lo, hi int) {
		lock <- struct{}{}
		got = append(got, slab{lo, hi})
		<-lock
	})
	if len(got) == 0 {
		t.Fatal("no slabs ran")
	}
	covered := make([]bool, 103)
	for _, s := range got {
		if s.lo >= s.hi {
			t.Fatalf("empty slab [%d,%d)", s.lo, s.hi)
		}
		for i := s.lo; i < s.hi; i++ {
			if covered[i] {
				t.Fatalf("index %d covered twice", i)
			}
			covered[i] = true
		}
	}
	for i, c := range covered {
		if !c {
			t.Fatalf("index %d not covered", i)
		}
	}
}

// TestRunZeroAlloc pins the steady-state contract: a Run with a
// pre-built closure allocates nothing.
func TestRunZeroAlloc(t *testing.T) {
	var r Runner
	sink := make([]float64, 4096)
	fn := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sink[i]++
		}
	}
	r.Run(4, len(sink), fn) // warm the pool
	allocs := testing.AllocsPerRun(50, func() {
		r.Run(4, len(sink), fn)
	})
	if allocs > 0 {
		t.Errorf("Run allocates %.1f objects per call, want 0", allocs)
	}
}

func TestDefaultPerRank(t *testing.T) {
	gmp := runtime.GOMAXPROCS(0)
	if got := DefaultPerRank(1); got != gmp {
		t.Errorf("DefaultPerRank(1) = %d, want GOMAXPROCS = %d", got, gmp)
	}
	if got := DefaultPerRank(10 * gmp); got != 1 {
		t.Errorf("DefaultPerRank(%d) = %d, want 1", 10*gmp, got)
	}
	if got := DefaultPerRank(0); got != gmp {
		t.Errorf("DefaultPerRank(0) = %d, want %d", got, gmp)
	}
}
