package dump

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func sampleState(rank int) *State {
	return &State{
		Rank:   rank,
		Step:   42,
		Method: "lb2d",
		NX:     8, NY: 6, NZ: 1,
		Fields: map[string][]float64{
			"rho": {1, 2, 3},
			"vx":  {0.5, -0.5},
		},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := Path(dir, 3)
	want := sampleState(3)
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rank != 3 || got.Step != 42 || got.Method != "lb2d" || got.NX != 8 {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Fields) != 2 || got.Fields["rho"][2] != 3 || got.Fields["vx"][1] != -0.5 {
		t.Errorf("fields mismatch: %v", got.Fields)
	}
}

func TestSaveRejectsInvalid(t *testing.T) {
	dir := t.TempDir()
	bad := []*State{
		{Rank: -1, Step: 0, NX: 1, NY: 1, NZ: 1, Fields: map[string][]float64{"a": nil}},
		{Rank: 0, Step: -2, NX: 1, NY: 1, NZ: 1, Fields: map[string][]float64{"a": nil}},
		{Rank: 0, Step: 0, NX: 0, NY: 1, NZ: 1, Fields: map[string][]float64{"a": nil}},
		{Rank: 0, Step: 0, NX: 1, NY: 1, NZ: 1, Fields: nil},
	}
	for i, st := range bad {
		if err := Save(Path(dir, i), st); err == nil {
			t.Errorf("invalid state #%d saved", i)
		}
	}
}

func TestLoadMissingAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(Path(dir, 0)); err == nil {
		t.Error("loading a missing dump succeeded")
	}
	bad := filepath.Join(dir, "corrupt.gob")
	os.WriteFile(bad, []byte("not a gob stream"), 0o644)
	if _, err := Load(bad); err == nil {
		t.Error("loading a corrupt dump succeeded")
	}
}

func TestSaveIsAtomic(t *testing.T) {
	// After Save, no temp files remain and the target parses.
	dir := t.TempDir()
	if err := Save(Path(dir, 0), sampleState(0)); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if e.Name()[0] == '.' {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func TestSaveAllLoadAll(t *testing.T) {
	dir := t.TempDir()
	seq := NewSequencer(0)
	states := []*State{sampleState(0), sampleState(1), sampleState(2)}
	for i, st := range states {
		st.Rank = i
	}
	if err := seq.SaveAll(dir, states); err != nil {
		t.Fatal(err)
	}
	got, err := LoadAll(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range got {
		if st.Rank != i {
			t.Errorf("slot %d holds rank %d", i, st.Rank)
		}
	}
	if _, err := LoadAll(dir, 4); err == nil {
		t.Error("LoadAll with a missing rank succeeded")
	}
}

// TestLoadAllReportsMissingRanks: a partial checkpoint names every absent
// rank, not just the first open failure, so an operator sees at a glance
// how torn the directory is.
func TestLoadAllReportsMissingRanks(t *testing.T) {
	dir := t.TempDir()
	seq := NewSequencer(0)
	states := []*State{sampleState(0), sampleState(1), sampleState(2), sampleState(3)}
	for i, st := range states {
		st.Rank = i
	}
	if err := seq.SaveAll(dir, states); err != nil {
		t.Fatal(err)
	}
	for _, rank := range []int{1, 3} {
		if err := os.Remove(Path(dir, rank)); err != nil {
			t.Fatal(err)
		}
	}
	_, err := LoadAll(dir, 4)
	if err == nil {
		t.Fatal("partial checkpoint loaded")
	}
	for _, want := range []string{"[1 3]", "2 of 4"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestLoadAllRejectsExtraRanks: a directory with more rank dumps than the
// manifest claims is a shape disagreement, not a smaller simulation.
func TestLoadAllRejectsExtraRanks(t *testing.T) {
	dir := t.TempDir()
	seq := NewSequencer(0)
	states := []*State{sampleState(0), sampleState(1), sampleState(2)}
	for i, st := range states {
		st.Rank = i
	}
	if err := seq.SaveAll(dir, states); err != nil {
		t.Fatal(err)
	}
	_, err := LoadAll(dir, 2)
	if err == nil {
		t.Fatal("LoadAll accepted a directory with an extra rank dump")
	}
	if !strings.Contains(err.Error(), "3 rank dumps, expected 2") {
		t.Errorf("error %q does not describe the rank-count disagreement", err)
	}
}

func TestSequencerSerializesSaves(t *testing.T) {
	// Two goroutines contend for the token; the gap forces measurable
	// separation between their save windows.
	seq := NewSequencer(20 * time.Millisecond)
	type window struct{ start, end time.Time }
	ch := make(chan window, 2)
	for i := 0; i < 2; i++ {
		go func() {
			seq.Acquire()
			w := window{start: time.Now()}
			time.Sleep(5 * time.Millisecond) // the "save"
			w.end = time.Now()
			seq.Release()
			ch <- w
		}()
	}
	a, b := <-ch, <-ch
	if a.start.After(b.start) {
		a, b = b, a
	}
	if b.start.Before(a.end) {
		t.Error("save windows overlap; sequencer failed to serialize")
	}
	if gap := b.start.Sub(a.end); gap < 15*time.Millisecond {
		t.Errorf("inter-save gap %v, want >= ~20ms", gap)
	}
}
