// Package dump implements the "dump files" of section 4.1: serialized
// subregion states that contain all the information a workstation needs to
// participate in a distributed computation. The decomposition program
// writes one dump file per subregion; a migrating process saves its state
// into a dump file and is restarted from it on a free host; the monitoring
// program restarts a failed simulation from the automatically saved dumps.
//
// The package also provides the staggered saving discipline of section 5.2:
// parallel processes save their state one after the other, with time gaps
// in between, so that simultaneous multi-megabyte writes cannot saturate
// the shared network and file server.
package dump

import (
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// State is the complete integration state of one subregion. Field arrays
// are raw storage including ghost layers, so a restore reproduces the
// worker bit-for-bit.
type State struct {
	Rank   int
	Step   int
	Method string // "fd2d", "lb2d", "fd3d", "lb3d"
	Epoch  int    // communication epoch at save time

	NX, NY, NZ int // interior sizes (NZ = 1 in 2D)

	Fields map[string][]float64
}

// Validate performs basic consistency checks after a load.
func (st *State) Validate() error {
	if st.Rank < 0 {
		return fmt.Errorf("dump: negative rank %d", st.Rank)
	}
	if st.Step < 0 {
		return fmt.Errorf("dump: negative step %d", st.Step)
	}
	if st.NX <= 0 || st.NY <= 0 || st.NZ <= 0 {
		return fmt.Errorf("dump: bad geometry %dx%dx%d", st.NX, st.NY, st.NZ)
	}
	if len(st.Fields) == 0 {
		return fmt.Errorf("dump: no fields")
	}
	return nil
}

// Path returns the canonical dump file name for a rank inside dir.
func Path(dir string, rank int) string {
	return filepath.Join(dir, fmt.Sprintf("dump-rank%04d.gob", rank))
}

// Save writes the state atomically (temp file + rename), so a monitoring
// program never restarts from a torn dump.
func Save(path string, st *State) error {
	if err := st.Validate(); err != nil {
		return err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dump: save: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".tmp-dump-*")
	if err != nil {
		return fmt.Errorf("dump: save: %w", err)
	}
	name := tmp.Name()
	enc := gob.NewEncoder(tmp)
	if err := enc.Encode(st); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("dump: encode: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("dump: save: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("dump: save: %w", err)
	}
	return nil
}

// Load reads and validates a dump file.
func Load(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dump: load: %w", err)
	}
	defer f.Close()
	var st State
	if err := gob.NewDecoder(f).Decode(&st); err != nil {
		return nil, fmt.Errorf("dump: decode %s: %w", path, err)
	}
	if err := st.Validate(); err != nil {
		return nil, fmt.Errorf("dump: %s: %w", path, err)
	}
	return &st, nil
}

// Sequencer serializes the saving of parallel states (section 5.2). Ranks
// acquire the save token in turn; Gap is the pause inserted between
// consecutive saves so other programs can use the network and file system.
// A saving operation that would take 30 seconds and monopolize the shared
// resources now takes 60-90 seconds but leaves free time slots.
type Sequencer struct {
	Gap   time.Duration
	token chan struct{}
}

// NewSequencer creates a sequencer with the given inter-save gap.
func NewSequencer(gap time.Duration) *Sequencer {
	s := &Sequencer{Gap: gap, token: make(chan struct{}, 1)}
	s.token <- struct{}{}
	return s
}

// Acquire blocks until it is this saver's turn.
func (s *Sequencer) Acquire() {
	<-s.token
}

// Release waits the configured gap and passes the token on.
func (s *Sequencer) Release() {
	if s.Gap > 0 {
		time.Sleep(s.Gap)
	}
	s.token <- struct{}{}
}

// SaveAll saves a set of states through the sequencer in rank order,
// returning the first error. It is the orderly whole-simulation checkpoint
// the monitoring program performs every 10-20 minutes.
func (s *Sequencer) SaveAll(dir string, states []*State) error {
	for _, st := range states {
		s.Acquire()
		err := Save(Path(dir, st.Rank), st)
		s.Release()
		if err != nil {
			return err
		}
	}
	return nil
}

// LoadAll loads the dumps of ranks 0..p-1 from dir. A partial checkpoint
// is reported by listing every missing rank (not just the first open
// failure), and a directory holding more rank dumps than the caller's
// manifest expects is rejected — either way the caller learns the
// checkpoint disagrees with what it believes about the simulation instead
// of restarting a wrong one.
func LoadAll(dir string, p int) ([]*State, error) {
	extra, err := filepath.Glob(filepath.Join(dir, "dump-rank*.gob"))
	if err != nil {
		return nil, fmt.Errorf("dump: scan %s: %w", dir, err)
	}
	if len(extra) > p {
		return nil, fmt.Errorf("dump: %s holds %d rank dumps, expected %d", dir, len(extra), p)
	}
	out := make([]*State, p)
	var missing []int
	for rank := 0; rank < p; rank++ {
		st, err := Load(Path(dir, rank))
		if errors.Is(err, os.ErrNotExist) {
			missing = append(missing, rank)
			continue
		}
		if err != nil {
			return nil, err
		}
		if st.Rank != rank {
			return nil, fmt.Errorf("dump: file %s holds rank %d", Path(dir, rank), st.Rank)
		}
		out[rank] = st
	}
	if len(missing) > 0 {
		return nil, fmt.Errorf("dump: %s is a partial checkpoint: ranks %v missing (%d of %d present)",
			dir, missing, p-len(missing), p)
	}
	return out, nil
}
