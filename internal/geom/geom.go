// Package geom builds the flue-pipe geometries of figures 1 and 2: the
// simulated musical instruments (organ pipe, recorder, flute mouthpieces)
// that motivate the whole system. A jet of air enters from an opening in
// the left wall, impinges on a sharp edge (the labium), and couples to a
// resonant cavity; the gray areas are walls and the dark-gray enclosing
// walls demarcate the inlet and the outlet.
//
// The geometries are parameterized by grid size so the examples can run
// scaled-down versions of the paper's 800x500 and 1107x700 grids; all
// features are placed at fixed fractions of the domain.
package geom

import "repro/internal/fluid"

// frac scales a dimension by a fraction, clamping to [0, n-1].
func frac(n int, f float64) int {
	v := int(f * float64(n))
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}

// FluePipe builds the figure-1 geometry: jet inlet on the left wall, a
// sharp edge in front of it, a resonant pipe along the bottom, and the
// outlet on the right part of the enclosure.
func FluePipe(nx, ny int) *fluid.Mask2D {
	m := fluid.NewMask2D(nx, ny)
	m.Border(fluid.Wall)

	jetY := frac(ny, 0.55)      // jet axis height
	jetHalf := max(1, ny/25)    // half-height of the inlet slot
	edgeX := frac(nx, 0.35)     // apex of the sharp edge
	pipeTop := frac(ny, 0.30)   // top wall of the resonant pipe
	pipeLeft := frac(nx, 0.10)  // closed end of the pipe
	pipeRight := frac(nx, 0.80) // open end of the pipe (under the edge)
	outTop := frac(ny, 0.45)    // outlet slot on the right wall
	outBottom := frac(ny, 0.70)

	// Inlet slot in the left wall.
	for y := jetY - jetHalf; y <= jetY+jetHalf; y++ {
		if y > 0 && y < ny-1 {
			m.Set(0, y, fluid.Inlet)
		}
	}

	// The sharp edge: a wedge with its apex at jet height, thickening to
	// the right and descending toward the pipe mouth.
	for i := 0; edgeX+i < frac(nx, 0.55); i++ {
		x := edgeX + i
		top := jetY - 1 - i/3 // slowly rising upper surface
		bot := jetY - 1 - i
		if bot < pipeTop {
			bot = pipeTop
		}
		for y := bot; y <= top; y++ {
			if y > 0 && y < ny-1 {
				m.Set(x, y, fluid.Wall)
			}
		}
	}

	// The resonant pipe: a horizontal duct along the bottom, closed at
	// the left, with its mouth under the sharp edge.
	for x := pipeLeft; x <= pipeRight; x++ {
		m.Set(x, pipeTop, fluid.Wall)
	}
	for y := 1; y <= pipeTop; y++ {
		m.Set(pipeLeft, y, fluid.Wall)
	}

	// Outlet slot in the right wall.
	for y := outTop; y <= outBottom; y++ {
		m.Set(nx-1, y, fluid.Outlet)
	}
	return m
}

// FluePipeChannel builds the figure-2 variant: the jet passes through a
// long channel before impinging the sharp edge, the outlet is at the top
// (the air tends to move upwards after impinging the edge), and the
// bottom-left of the enclosure is solid wall, producing entirely-solid
// subregions that the decomposition can leave unassigned (the paper
// employs 15 workstations for a (6 x 4) = 24 decomposition).
func FluePipeChannel(nx, ny int) *fluid.Mask2D {
	m := FluePipe(nx, ny)

	jetY := frac(ny, 0.55)
	chanHalf := max(2, ny/20)
	edgeX := frac(nx, 0.35)

	// Channel walls from the left wall to just before the edge.
	for x := 1; x < edgeX-max(2, nx/40); x++ {
		for y := 1; y < ny-1; y++ {
			inChannel := y >= jetY-chanHalf && y <= jetY+chanHalf
			if !inChannel && y > frac(ny, 0.30) {
				m.Set(x, y, fluid.Wall)
			}
		}
	}

	// Solid lower-left block (the all-wall subregions of figure 2).
	for x := 1; x < frac(nx, 0.08); x++ {
		for y := 1; y < frac(ny, 0.30); y++ {
			m.Set(x, y, fluid.Wall)
		}
	}

	// Move the outlet to the top wall.
	for y := frac(ny, 0.45); y <= frac(ny, 0.70); y++ {
		if m.At(nx-1, y) == fluid.Outlet {
			m.Set(nx-1, y, fluid.Wall)
		}
	}
	for x := frac(nx, 0.55); x <= frac(nx, 0.85); x++ {
		m.Set(x, ny-1, fluid.Outlet)
	}
	return m
}
