package geom

import (
	"testing"

	"repro/internal/fluid"
	"repro/internal/lbm"
)

// newLBSolver wraps lbm.NewSolver2D for geometry smoke tests.
func newLBSolver(t *testing.T, nx, ny int, p fluid.Params, m *fluid.Mask2D) *lbm.Solver2D {
	t.Helper()
	s, err := lbm.NewSolver2D(nx, ny, p, func(x, y int) fluid.CellType { return m.At(x, y) })
	if err != nil {
		t.Fatal(err)
	}
	return s
}
